package baseline

import (
	"testing"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func TestCapsMatchTableOne(t *testing.T) {
	if Caps(OpLevel) != (Capabilities{}) {
		t.Fatal("op-level should have no capabilities")
	}
	k := Caps(KernelLevel)
	if !k.GPUObservability || k.RDMAObservability || !k.GrayFailure || k.Distributed {
		t.Fatalf("kernel caps = %+v", k)
	}
	r := Caps(RDMALevel)
	if !r.RDMAObservability || r.GPUObservability || !r.Distributed {
		t.Fatalf("rdma caps = %+v", r)
	}
	m := Caps(Coll)
	if !(m.RDMAObservability && m.GPUObservability && m.GrayFailure && m.PerformanceIssues && m.Distributed && m.RealTime) {
		t.Fatalf("mycroft caps = %+v", m)
	}
	if Caps(None) != (Capabilities{}) {
		t.Fatal("none caps wrong")
	}
}

func TestOpLevelWiring(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(OpLevel, eng.Now)
	var cfg ccl.Config
	tr.Wire(&cfg)
	cfg.OnComplete(3, ccl.OpMeta{}, 0, 0)
	ops, chunks := tr.Events()
	if ops != 1 || chunks != 0 {
		t.Fatalf("events = %d/%d", ops, chunks)
	}
	if tr.BytesTraced() != opEventBytes {
		t.Fatalf("bytes = %d", tr.BytesTraced())
	}
	if _, ok := tr.LastEvent(3); !ok {
		t.Fatal("last event missing")
	}
}

func TestKernelLevelWiring(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(KernelLevel, eng.Now)
	var cfg ccl.Config
	tr.Wire(&cfg)
	if cfg.ChunkOverhead != DefaultKernelOverhead {
		t.Fatalf("overhead = %v", cfg.ChunkOverhead)
	}
	cfg.OnChunkEvent(1, ccl.StageGPUReady, 4<<20)
	cfg.OnChunkEvent(1, ccl.StageTransmit, 4<<20) // not a GPU event: ignored
	_, chunks := tr.Events()
	if chunks != 1 {
		t.Fatalf("chunks = %d", chunks)
	}
}

func TestRDMALevelWiring(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(RDMALevel, eng.Now)
	var cfg ccl.Config
	tr.Wire(&cfg)
	if cfg.ChunkOverhead != 0 {
		t.Fatal("rdma tracer should not add critical-path cost")
	}
	cfg.OnChunkEvent(1, ccl.StageGPUReady, 1) // not a WR event: ignored
	cfg.OnChunkEvent(1, ccl.StageTransmit, 1)
	cfg.OnChunkEvent(1, ccl.StageDone, 1)
	_, chunks := tr.Events()
	if chunks != 2 {
		t.Fatalf("chunks = %d", chunks)
	}
	if tr.BytesTraced() != 2*rdmaEventBytes {
		t.Fatalf("bytes = %d", tr.BytesTraced())
	}
}

func TestWiringPreservesExistingHooks(t *testing.T) {
	eng := sim.NewEngine(1)
	called := 0
	cfg := ccl.Config{OnComplete: func(topo.Rank, ccl.OpMeta, sim.Time, sim.Time) { called++ }}
	New(OpLevel, eng.Now).Wire(&cfg)
	cfg.OnComplete(0, ccl.OpMeta{}, 0, 0)
	if called != 1 {
		t.Fatal("pre-existing hook lost")
	}
}

func TestNoneAndCollAreInert(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, k := range []Kind{None, Coll} {
		var cfg ccl.Config
		New(k, eng.Now).Wire(&cfg)
		if cfg.OnComplete != nil || cfg.OnChunkEvent != nil || cfg.ChunkOverhead != 0 {
			t.Fatalf("%s tracer wired hooks", k)
		}
	}
}

func TestDetectionAndStalledRanks(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(KernelLevel, eng.Now)
	var cfg ccl.Config
	tr.Wire(&cfg)
	// Rank 1 stops first, rank 0 a second later.
	cfg.OnChunkEvent(1, ccl.StageGPUReady, 1)
	eng.RunFor(time.Second)
	cfg.OnChunkEvent(0, ccl.StageGPUReady, 1)
	if tr.Detected(eng.Now(), 5*time.Second) {
		t.Fatal("detected too early")
	}
	eng.RunFor(10 * time.Second)
	if !tr.Detected(eng.Now(), 5*time.Second) {
		t.Fatal("stall not detected")
	}
	got := tr.StalledRanks(eng.Now(), 5*time.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("stalled order = %v", got)
	}
}

func TestDetectedEmptyTracer(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(OpLevel, eng.Now)
	if tr.Detected(eng.Now(), time.Second) {
		t.Fatal("empty tracer detected a stall")
	}
}

func TestSetOverhead(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(KernelLevel, eng.Now)
	tr.SetOverhead(5 * time.Microsecond)
	var cfg ccl.Config
	tr.Wire(&cfg)
	if cfg.ChunkOverhead != 5*time.Microsecond {
		t.Fatalf("overhead = %v", cfg.ChunkOverhead)
	}
	if tr.Kind() != KernelLevel {
		t.Fatal("kind wrong")
	}
}
