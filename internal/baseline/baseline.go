// Package baseline implements the comparator tracers of Table 1 so the
// capability and overhead experiments can run all four observability designs
// against the same faults:
//
//   - Op-level (Kineto/Chakra-style): records op completions only. While an
//     op is stuck it produces nothing, so a gray failure is visible only as
//     global silence — no rank or layer attribution.
//   - Kernel-level (NPKit/Nsight-style): records every GPU-side chunk event
//     synchronously, paying a critical-path cost per chunk. It sees which
//     rank's GPU events stopped but has no RDMA visibility, so a dead NIC
//     and a hung GPU look identical.
//   - RDMA-level (Aegis-style): records per-WR activity at the NIC. It sees
//     which NIC stopped but has no GPU visibility, so a starved NIC (victim)
//     and a faulty one are hard to tell apart, and GPU-side faults are
//     attributed to the network.
//
// Mycroft itself (Coll-level) is the trace/core packages; this package only
// models the alternatives.
package baseline

import (
	"sort"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Kind names a tracing design.
type Kind string

const (
	None        Kind = "none"
	OpLevel     Kind = "op-level"
	KernelLevel Kind = "kernel-level"
	RDMALevel   Kind = "rdma-level"
	Coll        Kind = "mycroft"
)

// Capabilities reproduces the Table 1 columns for each design.
type Capabilities struct {
	RDMAObservability bool
	GPUObservability  bool
	GrayFailure       bool
	PerformanceIssues bool
	Distributed       bool
	RealTime          bool
}

// Caps returns the static capability row for a design (Table 1).
func Caps(k Kind) Capabilities {
	switch k {
	case OpLevel:
		return Capabilities{}
	case KernelLevel:
		return Capabilities{GPUObservability: true, GrayFailure: true, PerformanceIssues: true}
	case RDMALevel:
		return Capabilities{RDMAObservability: true, GrayFailure: true, PerformanceIssues: true, Distributed: true}
	case Coll:
		return Capabilities{RDMAObservability: true, GPUObservability: true, GrayFailure: true, PerformanceIssues: true, Distributed: true, RealTime: true}
	default:
		return Capabilities{}
	}
}

// Per-event record sizes for volume accounting (bytes).
const (
	opEventBytes     = 64
	kernelEventBytes = 64
	rdmaEventBytes   = 32
)

// DefaultKernelOverhead is the synchronous per-chunk instrumentation cost of
// the kernel-level tracer. It is calibrated so that tracing a 4 MiB-chunk
// pipeline over 400 Gbps NICs costs about two thirds of the achievable bus
// bandwidth, matching the NPKit measurement in §2.3.
const DefaultKernelOverhead = 250 * time.Microsecond

// Tracer is one attached comparator instance.
type Tracer struct {
	kind     Kind
	overhead time.Duration

	bytes       uint64
	opEvents    uint64
	chunkEvents uint64

	lastEvent map[topo.Rank]sim.Time
	everEvent map[topo.Rank]bool
	posted    map[topo.Rank]uint64 // RDMA-level: WRs posted per rank
	completed map[topo.Rank]uint64 // RDMA-level: CQEs per rank
	now       func() sim.Time
}

// New creates a tracer of the given design with default costs.
func New(kind Kind, now func() sim.Time) *Tracer {
	t := &Tracer{
		kind:      kind,
		lastEvent: make(map[topo.Rank]sim.Time),
		everEvent: make(map[topo.Rank]bool),
		posted:    make(map[topo.Rank]uint64),
		completed: make(map[topo.Rank]uint64),
		now:       now,
	}
	if kind == KernelLevel {
		t.overhead = DefaultKernelOverhead
	}
	return t
}

// Kind returns the design.
func (t *Tracer) Kind() Kind { return t.kind }

// SetOverhead overrides the per-chunk critical path cost (ablations).
func (t *Tracer) SetOverhead(d time.Duration) { t.overhead = d }

// BytesTraced returns the produced trace volume.
func (t *Tracer) BytesTraced() uint64 { return t.bytes }

// Events returns (op completions, chunk events) recorded.
func (t *Tracer) Events() (ops, chunks uint64) { return t.opEvents, t.chunkEvents }

// Wire installs the tracer's hooks into a CCL config. Op-level hooks
// completions; kernel-level hooks GPU-side chunk events (and injects its
// synchronous cost); RDMA-level hooks WR-level events.
func (t *Tracer) Wire(cfg *ccl.Config) {
	switch t.kind {
	case None, Coll:
		return
	case OpLevel:
		prev := cfg.OnComplete
		cfg.OnComplete = func(r topo.Rank, m ccl.OpMeta, s, e sim.Time) {
			t.opEvents++
			t.bytes += opEventBytes
			t.mark(r)
			if prev != nil {
				prev(r, m, s, e)
			}
		}
	case KernelLevel:
		prev := cfg.OnChunkEvent
		cfg.OnChunkEvent = func(r topo.Rank, st ccl.ChunkStage, n int64) {
			if st == ccl.StageGPUReady {
				t.chunkEvents++
				t.bytes += kernelEventBytes
				t.mark(r)
			}
			if prev != nil {
				prev(r, st, n)
			}
		}
		if t.overhead > cfg.ChunkOverhead {
			cfg.ChunkOverhead = t.overhead
		}
	case RDMALevel:
		prev := cfg.OnChunkEvent
		cfg.OnChunkEvent = func(r topo.Rank, st ccl.ChunkStage, n int64) {
			switch st {
			case ccl.StageTransmit:
				t.chunkEvents++
				t.bytes += rdmaEventBytes
				t.posted[r]++
				t.mark(r)
			case ccl.StageDone:
				t.chunkEvents++
				t.bytes += rdmaEventBytes
				t.completed[r]++
				t.mark(r)
			}
			if prev != nil {
				prev(r, st, n)
			}
		}
	}
}

func (t *Tracer) mark(r topo.Rank) {
	t.lastEvent[r] = t.now()
	t.everEvent[r] = true
}

// LastEvent returns the newest event time per rank.
func (t *Tracer) LastEvent(r topo.Rank) (sim.Time, bool) {
	ts, ok := t.lastEvent[r]
	return ts, ok
}

// Detected reports whether the tracer's event stream exposes a stall at all:
// true when every previously-active rank has been silent for at least
// timeout. This is the strongest detection any of these designs can make
// without per-flow state.
func (t *Tracer) Detected(now sim.Time, timeout time.Duration) bool {
	if len(t.lastEvent) == 0 {
		return false
	}
	for _, ts := range t.lastEvent {
		if now.Sub(ts) < timeout {
			return false
		}
	}
	return true
}

// OutstandingRanks returns ranks whose WR accounting shows posted work
// requests that never completed — the one localization the RDMA-level
// design can make precisely (a wedged RNIC). GPU-side faults leave no
// outstanding WRs anywhere, which is exactly the design's blind spot.
func (t *Tracer) OutstandingRanks() []topo.Rank {
	var out []topo.Rank
	for r, p := range t.posted {
		if p > t.completed[r] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Suspects is the design's best localization: the RDMA level prefers ranks
// with frozen outstanding WRs; every design falls back to event-staleness
// ordering.
func (t *Tracer) Suspects(now sim.Time, timeout time.Duration) []topo.Rank {
	if t.kind == RDMALevel {
		if out := t.OutstandingRanks(); len(out) > 0 {
			return out
		}
	}
	return t.StalledRanks(now, timeout)
}

// StalledRanks returns ranks whose events ceased at least timeout ago,
// ordered by staleness (earliest-stopped first). For designs with any
// per-rank visibility this is the best localization available: the rank
// whose events stopped first. The op-level design records too coarsely for
// this to mean anything (every rank's "last op" is just the last completed
// iteration), which the capability experiment demonstrates.
func (t *Tracer) StalledRanks(now sim.Time, timeout time.Duration) []topo.Rank {
	type rs struct {
		r  topo.Rank
		ts sim.Time
	}
	var out []rs
	for r, ts := range t.lastEvent {
		if now.Sub(ts) >= timeout {
			out = append(out, rs{r, ts})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ts != out[j].ts {
			return out[i].ts < out[j].ts
		}
		return out[i].r < out[j].r
	})
	ranks := make([]topo.Rank, len(out))
	for i, x := range out {
		ranks[i] = x.r
	}
	return ranks
}
