// Package train simulates a Megatron-style LLM training job on the
// substrates: it builds the cluster (nodes, GPUs, NICs), the per-host trace
// rings and collector agents, the TP/PP/DP communicators, and drives a
// per-rank iteration script — dataloader, per-layer compute with TP
// all-reduce, pipeline send/recv, and the data-parallel gradient all-reduce.
//
// Each rank launches a collective only when its own script reaches it
// (Hold/Release on the communicator), which is what produces the late-start
// and lagging-op_seq signatures Mycroft's analysis consumes. The package
// also exposes the fault hooks used by the injection experiments.
package train

import (
	"fmt"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/clouddb"
	"mycroft/internal/collector"
	"mycroft/internal/flightrec"
	"mycroft/internal/gpusim"
	"mycroft/internal/pystack"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// Config sizes a job. Zero values take defaults that give ~2.5 s iterations
// on the paper's 32-GPU testbed shape.
type Config struct {
	Topo topo.Config

	// Model schedule.
	LayersPerStage  int           // transformer layers per pipeline stage (default 2)
	ComputePerLayer time.Duration // forward compute per layer (default 300 ms; backward is 2×)
	TPBytesPerLayer int64         // TP all-reduce payload per layer (default 64 MiB)
	PPBytes         int64         // pipeline activation transfer (default 32 MiB)
	DPBytes         int64         // gradient all-reduce payload (default 512 MiB)
	DataloaderDelay time.Duration // per-iteration fetch (default 50 ms)
	MasterExtra     time.Duration // extra work on rank 0 (the heavier master of §9)
	// ComputeJitter adds uniform ±fraction noise to every compute phase
	// (e.g. 0.1 = ±10%), making workloads realistically non-deterministic
	// in duration while staying seed-deterministic. Default 0.
	ComputeJitter float64
	// CheckpointEvery pauses all ranks for CheckpointDelay every N
	// iterations (0 = never). Checkpointing happens outside the CCL, so a
	// stuck checkpoint is py-spy's case, not Mycroft's (§6.2).
	CheckpointEvery int
	CheckpointDelay time.Duration // default 200 ms when CheckpointEvery > 0

	// Substrate.
	NIC ccl.Config // unused fields ignored; kept for doc symmetry
	CCL ccl.Config

	NICConfig rdma.NICConfig
	GPUConfig gpusim.Config

	// Trace pipeline.
	RingCapacity int // per-host ring slots (default 1<<16)
	Collector    collector.Config
	Retention    time.Duration // cloud DB retention (default 0: keep all)

	// DisableTracing turns Mycroft tracepoints off entirely (the no-tracing
	// overhead baseline).
	DisableTracing bool
	// FlightRecorderSize: entries per rank (default 64; 0 keeps default).
	FlightRecorderSize int
}

func (c Config) withDefaults() Config {
	if c.LayersPerStage <= 0 {
		c.LayersPerStage = 2
	}
	if c.ComputePerLayer <= 0 {
		c.ComputePerLayer = 300 * time.Millisecond
	}
	if c.TPBytesPerLayer <= 0 {
		c.TPBytesPerLayer = 64 << 20
	}
	if c.PPBytes <= 0 {
		c.PPBytes = 32 << 20
	}
	if c.DPBytes <= 0 {
		c.DPBytes = 512 << 20
	}
	if c.DataloaderDelay <= 0 {
		c.DataloaderDelay = 50 * time.Millisecond
	}
	if c.CheckpointEvery > 0 && c.CheckpointDelay <= 0 {
		c.CheckpointDelay = 200 * time.Millisecond
	}
	if c.ComputeJitter < 0 || c.ComputeJitter >= 1 {
		c.ComputeJitter = 0
	}
	if c.NICConfig.Bandwidth <= 0 {
		c.NICConfig = rdma.DefaultNIC()
	}
	if c.GPUConfig.CopyBandwidth <= 0 {
		c.GPUConfig = gpusim.DefaultGPU()
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 1 << 16
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 64
	}
	return c
}

// Job is a running simulated training job.
type Job struct {
	Eng     *sim.Engine
	Cluster *topo.Cluster
	Cfg     Config

	NICs []*rdma.NIC
	GPUs []*gpusim.GPU

	Rings  map[topo.IP]*trace.Ring
	Agents []*collector.Agent
	DB     *clouddb.DB

	TPComms []*ccl.Communicator // indexed by TP group index
	PPComms []*ccl.Communicator
	DPComms []*ccl.Communicator
	byComm  map[uint64]*ccl.Communicator

	FlightRec *flightrec.Recorder
	PyStack   *pystack.Sampler

	ranks []*rankDriver

	// Iteration bookkeeping.
	iterDone  []int // per rank
	iterStart map[int]sim.Time
	iterEnd   map[int]sim.Time
	doneRanks map[int]int
	// OnIteration fires when every rank finishes iteration i.
	OnIteration func(i int, start, end sim.Time)
	// OnRankIteration fires as each individual rank finishes an iteration —
	// the black-box timing feed: per-rank completion timestamps and nothing
	// else, which is exactly what the perf diagnosis channel consumes.
	OnRankIteration func(rank topo.Rank, iter int, at sim.Time)

	// Per-op metrics for bandwidth accounting.
	dpOpDur  []time.Duration
	dpOpSize []int64

	stopped bool
}

// commState orders submitted ops per communicator for the await protocol.
type commState struct {
	comm      *ccl.Communicator
	submitted int
	ops       []*ccl.Op
	specs     []ccl.OpSpec
	waiters   []map[topo.Rank]func() // per op: rank continuations
	onOpDone  func(*ccl.Op, sim.Time)
}

// rankDriver runs one rank's iteration script.
type rankDriver struct {
	job      *Job
	rank     topo.Rank
	coord    topo.Coord
	tp       *commState
	pp       *commState
	dp       *commState
	iter     int
	awaitIdx map[*commState]int

	computeStalled bool
	dataStalled    bool
	ckptStalled    bool
	// skipNextDP makes the rank skip its next DP all-reduce launch (the
	// synchronization-mismatch fault).
	skipNextDP bool
}

// New builds the job. Call Start to begin iterating.
func New(eng *sim.Engine, cfg Config) (*Job, error) {
	cfg = cfg.withDefaults()
	cl, err := topo.New(cfg.Topo)
	if err != nil {
		return nil, err
	}
	j := &Job{
		Eng: eng, Cluster: cl, Cfg: cfg,
		Rings:     make(map[topo.IP]*trace.Ring),
		byComm:    make(map[uint64]*ccl.Communicator),
		iterStart: make(map[int]sim.Time),
		iterEnd:   make(map[int]sim.Time),
		doneRanks: make(map[int]int),
	}
	j.FlightRec = flightrec.New(eng, cfg.FlightRecorderSize)
	j.PyStack = pystack.New(eng)
	j.DB = clouddb.New(eng, cfg.Retention)

	world := cl.WorldSize()
	j.iterDone = make([]int, world)
	for r := 0; r < world; r++ {
		j.NICs = append(j.NICs, rdma.NewNIC(eng, rdma.NICID(r), fmt.Sprintf("nic%d", r), cfg.NICConfig))
		j.GPUs = append(j.GPUs, gpusim.New(eng, gpusim.ID(r), cfg.GPUConfig))
	}
	for _, node := range cl.Nodes {
		ring := trace.NewRing(cfg.RingCapacity)
		j.Rings[node.IP] = ring
		j.Agents = append(j.Agents, collector.NewAgent(eng, ring, j.DB, cfg.Collector))
	}

	cclCfg := cfg.CCL
	cclCfg.SinkFor = func(r topo.Rank) trace.Sink {
		if cfg.DisableTracing {
			return trace.Null
		}
		return j.Rings[cl.IPOf(r)]
	}
	baseLaunch := cclCfg.OnLaunch
	cclCfg.OnLaunch = func(r topo.Rank, m ccl.OpMeta) {
		j.FlightRec.Record(r, m)
		if baseLaunch != nil {
			baseLaunch(r, m)
		}
	}

	mkInfos := func(g *topo.Group) []ccl.RankInfo {
		infos := make([]ccl.RankInfo, len(g.Ranks))
		for i, r := range g.Ranks {
			infos[i] = ccl.RankInfo{
				Rank: r, IP: cl.IPOf(r), Node: cl.NodeOf(r).ID,
				GPU: j.GPUs[r], NIC: j.NICs[r],
			}
		}
		return infos
	}
	nextCommID := uint64(1)
	build := func(groups []*topo.Group) []*ccl.Communicator {
		var out []*ccl.Communicator
		for _, g := range groups {
			c := ccl.NewCommunicator(eng, nextCommID, mkInfos(g), cclCfg)
			nextCommID++
			j.byComm[c.ID()] = c
			out = append(out, c)
		}
		return out
	}
	j.TPComms = build(cl.TPGroups())
	j.PPComms = build(cl.PPGroups())
	j.DPComms = build(cl.DPGroups())

	for r := 0; r < world; r++ {
		rank := topo.Rank(r)
		co := cl.CoordOf(rank)
		rd := &rankDriver{job: j, rank: rank, coord: co}
		j.ranks = append(j.ranks, rd)
		j.PyStack.Set(rank, pystack.FrameIdle)
	}
	// Wire comm states after all drivers exist.
	tpStates := commStates(j.TPComms)
	ppStates := commStates(j.PPComms)
	dpStates := commStates(j.DPComms)
	for _, cs := range dpStates {
		cs.onOpDone = func(op *ccl.Op, _ sim.Time) {
			j.dpOpDur = append(j.dpOpDur, op.DoneTime().Sub(op.StartTime()))
			j.dpOpSize = append(j.dpOpSize, op.Meta().Bytes)
		}
	}
	for _, rd := range j.ranks {
		rd.tp = tpStates[tpIndex(cl, rd.coord)]
		rd.pp = ppStates[ppIndex(cl, rd.coord)]
		rd.dp = dpStates[dpIndex(cl, rd.coord)]
	}
	// Every rank starts held on all its comms; the script releases.
	for _, rd := range j.ranks {
		rd.tp.comm.Hold(rd.rank)
		rd.pp.comm.Hold(rd.rank)
		rd.dp.comm.Hold(rd.rank)
	}
	return j, nil
}

// MustNew is New for known-good configs.
func MustNew(eng *sim.Engine, cfg Config) *Job {
	j, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return j
}

func commStates(comms []*ccl.Communicator) []*commState {
	out := make([]*commState, len(comms))
	for i, c := range comms {
		out[i] = &commState{comm: c}
	}
	return out
}

// Group index helpers matching topo group construction order.
func tpIndex(cl *topo.Cluster, c topo.Coord) int { return c.DP*cl.PP + c.PP }
func ppIndex(cl *topo.Cluster, c topo.Coord) int { return c.DP*cl.TP + c.TP }
func dpIndex(cl *topo.Cluster, c topo.Coord) int { return c.PP*cl.TP + c.TP }

// Start launches every rank's script.
func (j *Job) Start() {
	for _, rd := range j.ranks {
		rd := rd
		j.Eng.At(j.Eng.Now(), func() { rd.runIteration() })
	}
}

// Stop halts new iterations and closes communicators' tickers.
func (j *Job) Stop() {
	j.stopped = true
	for _, c := range j.byComm {
		c.Close()
	}
	for _, a := range j.Agents {
		a.Stop()
	}
}

// CommOf returns the communicator with the given id.
func (j *Job) CommOf(id uint64) *ccl.Communicator { return j.byComm[id] }

// IterationsDone returns the minimum iteration count across ranks.
func (j *Job) IterationsDone() int {
	min := int(^uint(0) >> 1)
	for _, n := range j.iterDone {
		if n < min {
			min = n
		}
	}
	return min
}

// IterationTime returns iteration i's global start/end, if complete.
func (j *Job) IterationTime(i int) (start, end sim.Time, ok bool) {
	s, ok1 := j.iterStart[i]
	e, ok2 := j.iterEnd[i]
	return s, e, ok1 && ok2
}

// MeanIterationTime averages the first n complete iterations.
func (j *Job) MeanIterationTime(n int) (time.Duration, bool) {
	var sum time.Duration
	var count int
	for i := 0; i < n; i++ {
		if s, e, ok := j.IterationTime(i); ok {
			sum += e.Sub(s)
			count++
		}
	}
	if count == 0 {
		return 0, false
	}
	return sum / time.Duration(count), true
}

// DPBusBandwidth returns the mean achieved bus bandwidth of the gradient
// all-reduces (the nccl-tests metric: 2(R−1)/R × bytes / time), in bytes/s.
func (j *Job) DPBusBandwidth() (float64, bool) {
	if len(j.dpOpDur) == 0 {
		return 0, false
	}
	R := float64(j.Cluster.DP)
	if R < 2 {
		return 0, false
	}
	var sum float64
	for i, d := range j.dpOpDur {
		if d <= 0 {
			continue
		}
		sum += 2 * (R - 1) / R * float64(j.dpOpSize[i]) / d.Seconds()
	}
	return sum / float64(len(j.dpOpDur)), true
}

// --- fault hooks (used by the faults package and experiments) ---

// StallCompute makes rank r's next compute step never finish (a hang outside
// the CCL: the rank will stop launching collectives).
func (j *Job) StallCompute(r topo.Rank) { j.ranks[r].computeStalled = true }

// StallDataloader makes rank r's dataloader block forever.
func (j *Job) StallDataloader(r topo.Rank) { j.ranks[r].dataStalled = true }

// StallCheckpoint makes rank r's next checkpoint write block forever
// (requires CheckpointEvery > 0 for the phase to exist).
func (j *Job) StallCheckpoint(r topo.Rank) { j.ranks[r].ckptStalled = true }

// StartBackgroundTraffic floods rank r's NIC with external traffic toward a
// neighbouring node's NIC, modelling the congestion fault class: the
// victim's own flows contend with traffic Mycroft has no visibility into,
// and only the flow-level pressure pattern remains. share ∈ (0,1) is the
// fraction of the NIC the flood occupies (it keeps share/(1−share) bursts
// outstanding, so a FIFO NIC serves the victim the remaining slice).
// Returns a stop function.
func (j *Job) StartBackgroundTraffic(r topo.Rank, share float64) (stop func()) {
	if share <= 0 || share >= 1 {
		share = 0.9
	}
	k := int(share/(1-share) + 0.5)
	if k < 1 {
		k = 1
	}
	src := j.NICs[r]
	dst := j.NICs[(int(r)+j.Cfg.Topo.GPUsPerNode)%j.Cluster.WorldSize()]
	qp := rdma.NewQP(990000+int(r), src, dst)
	const burst = 4 << 20
	stopped := false
	var post func()
	post = func() {
		if stopped {
			return
		}
		qp.PostWrite(burst, nil, post) // repost on CQE: steady k outstanding
	}
	for i := 0; i < k; i++ {
		post()
	}
	return func() { stopped = true }
}

// SkipNextDPLaunch makes rank r silently skip its next DP all-reduce — the
// synchronization mismatch only the Flight Recorder can explain.
func (j *Job) SkipNextDPLaunch(r topo.Rank) { j.ranks[r].skipNextDP = true }

// CrashProxy crashes rank r's proxies on all its communicators.
func (j *Job) CrashProxy(r topo.Rank) {
	rd := j.ranks[r]
	rd.tp.comm.CrashProxy(r)
	rd.pp.comm.CrashProxy(r)
	rd.dp.comm.CrashProxy(r)
}
