package train

import (
	"testing"
	"time"

	"mycroft/internal/collector"
	"mycroft/internal/pystack"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// smallCfg is a 2-node × 4-GPU job (TP=2, PP=2, DP=2) with quick iterations.
func smallCfg() Config {
	return Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		LayersPerStage:  2,
		ComputePerLayer: 50 * time.Millisecond,
		TPBytesPerLayer: 16 << 20,
		PPBytes:         8 << 20,
		DPBytes:         64 << 20,
		DataloaderDelay: 10 * time.Millisecond,
		Collector:       collector.Config{DrainPeriod: 50 * time.Millisecond, UploadLatency: 200 * time.Millisecond},
	}
}

func TestIterationsComplete(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(30 * time.Second)
	n := j.IterationsDone()
	if n < 5 {
		t.Fatalf("only %d iterations in 30s", n)
	}
	s, e, ok := j.IterationTime(0)
	if !ok || e <= s {
		t.Fatalf("iteration 0 times: %v %v %v", s, e, ok)
	}
	if mean, ok := j.MeanIterationTime(n); !ok || mean <= 0 {
		t.Fatalf("mean iteration time: %v %v", mean, ok)
	}
}

func TestIterationTimesMonotone(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	var ends []sim.Time
	j.OnIteration = func(i int, start, end sim.Time) { ends = append(ends, end) }
	j.Start()
	eng.RunFor(20 * time.Second)
	if len(ends) < 3 {
		t.Fatalf("too few iterations: %d", len(ends))
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("iteration ends not monotone: %v", ends)
		}
	}
}

func TestTraceRecordsReachDB(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(15 * time.Second)
	if j.DB.Ingested() == 0 {
		t.Fatal("no records reached the cloud DB")
	}
	// Every rank must have produced completion logs on its DP comm.
	for r := 0; r < j.Cluster.WorldSize(); r++ {
		recs := j.DB.QueryRank(topo.Rank(r), 0, eng.Now())
		var completions, states int
		for _, rec := range recs {
			switch rec.Kind {
			case trace.KindCompletion:
				completions++
			case trace.KindState:
				states++
			}
		}
		if completions == 0 {
			t.Fatalf("rank %d has no completion logs", r)
		}
		if states == 0 {
			t.Fatalf("rank %d has no state logs", r)
		}
	}
}

func TestDPBusBandwidthSane(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(20 * time.Second)
	bw, ok := j.DPBusBandwidth()
	if !ok {
		t.Fatal("no DP bandwidth measured")
	}
	// Must be positive and below NIC line rate (50 GB/s).
	if bw <= 0 || bw > 50e9 {
		t.Fatalf("bus bandwidth %.3g B/s out of range", bw)
	}
}

func TestFlightRecorderSeesLaunches(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(10 * time.Second)
	if len(j.FlightRec.Ranks()) != j.Cluster.WorldSize() {
		t.Fatalf("flight recorder covers %d ranks", len(j.FlightRec.Ranks()))
	}
	if fs := j.FlightRec.Analyze(eng.Now(), 5*time.Second); len(fs) != 0 {
		t.Fatalf("healthy job produced findings: %v", fs)
	}
}

func TestPyStackFramesMove(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	stacks := j.PyStack.Dump()
	if len(stacks) != j.Cluster.WorldSize() {
		t.Fatalf("stacks for %d ranks", len(stacks))
	}
}

func TestDataloaderStallFreezesRank(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	before := j.IterationsDone()
	j.StallDataloader(2)
	eng.RunFor(20 * time.Second)
	if got := j.IterationsDone(); got > before+2 {
		t.Fatalf("job progressed %d iterations past a dataloader stall", got-before)
	}
	a := pystack.Analyze(j.PyStack.Dump())
	stuck := a.StuckInDataPath()
	if len(stuck) != 1 || stuck[0].Rank != 2 {
		t.Fatalf("py-spy outliers = %+v", stuck)
	}
}

func TestComputeHangFreezesRank(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	j.StallCompute(1)
	eng.RunFor(20 * time.Second)
	// Rank 1 must stop completing ops; its TP peer blocks with it.
	recs := j.DB.QueryRank(1, eng.Now().Add(-5*time.Second), eng.Now())
	for _, rec := range recs {
		if rec.Kind == trace.KindCompletion {
			t.Fatalf("hung rank still completing ops: %+v", rec)
		}
	}
}

func TestSyncMismatchShowsInFlightRecorder(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	j.SkipNextDPLaunch(3)
	eng.RunFor(25 * time.Second)
	findings := j.FlightRec.Analyze(eng.Now(), 5*time.Second)
	if len(findings) == 0 {
		t.Fatal("flight recorder found nothing after a skipped launch")
	}
	found := false
	for _, f := range findings {
		if f.Kind == "launch-ahead" {
			for _, r := range f.Ranks {
				if r == 3 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("rank 3 not identified as running ahead: %+v", findings)
	}
}

func TestProxyCrashStopsRankLogs(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	j.CrashProxy(2)
	eng.RunFor(2 * time.Second) // let in-flight uploads land
	mark := eng.Now()
	eng.RunFor(10 * time.Second)
	if recs := j.DB.QueryRank(2, mark, eng.Now()); len(recs) != 0 {
		t.Fatalf("crashed rank produced %d records", len(recs))
	}
}

func TestMasterExtraDelaysRankZero(t *testing.T) {
	cfg := smallCfg()
	cfg.MasterExtra = 200 * time.Millisecond
	eng := sim.NewEngine(1)
	j := MustNew(eng, cfg)
	j.Start()
	eng.RunFor(15 * time.Second)
	// Rank 0's TP all-reduce starts must trail its TP peer's.
	var start0, start1 sim.Time
	for _, rec := range j.DB.QueryRank(0, 0, eng.Now()) {
		if rec.Kind == trace.KindCompletion && rec.CommID == j.TPComms[0].ID() {
			start0 = rec.Start
			break
		}
	}
	for _, rec := range j.DB.QueryRank(1, 0, eng.Now()) {
		if rec.Kind == trace.KindCompletion && rec.CommID == j.TPComms[0].ID() {
			start1 = rec.Start
			break
		}
	}
	if start0 == 0 || start1 == 0 {
		t.Fatal("missing TP completion logs")
	}
	if start0.Sub(start1) < 150*time.Millisecond {
		t.Fatalf("master extra not visible: start0=%v start1=%v", start0, start1)
	}
}

func TestDisableTracingSilencesDB(t *testing.T) {
	cfg := smallCfg()
	cfg.DisableTracing = true
	eng := sim.NewEngine(1)
	j := MustNew(eng, cfg)
	j.Start()
	eng.RunFor(10 * time.Second)
	if j.DB.Ingested() != 0 {
		t.Fatalf("tracing disabled but %d records ingested", j.DB.Ingested())
	}
	if j.IterationsDone() < 2 {
		t.Fatal("job did not progress with tracing disabled")
	}
}

func TestStopHaltsEverything(t *testing.T) {
	eng := sim.NewEngine(1)
	j := MustNew(eng, smallCfg())
	j.Start()
	eng.RunFor(5 * time.Second)
	j.Stop()
	n := j.IterationsDone()
	eng.RunFor(10 * time.Second)
	if j.IterationsDone() > n+1 {
		t.Fatal("iterations continued after Stop")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, uint64) {
		eng := sim.NewEngine(7)
		j := MustNew(eng, smallCfg())
		j.Start()
		eng.RunFor(15 * time.Second)
		return j.IterationsDone(), j.DB.Ingested()
	}
	i1, r1 := run()
	i2, r2 := run()
	if i1 != i2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", i1, r1, i2, r2)
	}
}

func TestBadTopoRejected(t *testing.T) {
	cfg := smallCfg()
	cfg.Topo.TP = 3
	if _, err := New(sim.NewEngine(1), cfg); err == nil {
		t.Fatal("inconsistent topo accepted")
	}
}
