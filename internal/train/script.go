package train

import (
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/pystack"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// await coordinates one rank's arrival at op #idx of a communicator. The
// first rank to arrive submits the op (specs are a deterministic function of
// schedule position, so any rank builds the same one); every rank then
// registers its continuation and releases its hold so the CCL launches its
// part. On rank-local completion the hold is re-acquired and the script
// continues — exactly the "each rank calls the collective when its own work
// is ready" semantics of a real framework.
func (rd *rankDriver) await(cs *commState, mkSpec func() ccl.OpSpec, cont func()) {
	if rd.job.stopped {
		return
	}
	if rd.awaitIdx == nil {
		rd.awaitIdx = make(map[*commState]int)
	}
	idx := rd.awaitIdx[cs]
	rd.awaitIdx[cs] = idx + 1

	if cs.submitted == idx {
		spec := mkSpec()
		waiters := make(map[topo.Rank]func())
		cs.waiters = append(cs.waiters, waiters)
		cs.specs = append(cs.specs, spec)
		spec.OnRankDone = func(r topo.Rank, _ sim.Time) {
			cs.comm.Hold(r)
			if f := waiters[r]; f != nil {
				delete(waiters, r)
				f()
			}
		}
		type opHolder struct{ op *ccl.Op }
		holder := &opHolder{}
		holder.op = cs.comm.Submit(spec, func(t sim.Time) {
			if cs.onOpDone != nil && holder.op != nil {
				cs.onOpDone(holder.op, t)
			}
		})
		cs.ops = append(cs.ops, holder.op)
		cs.submitted++
	} else if cs.submitted < idx {
		panic("train: await ordering violated")
	}

	if cs.specs[idx].Skip[rd.rank] {
		// Synchronization bug: this rank silently skips the collective and
		// moves on. Release so the FIFO can pass over the skipped op.
		cs.comm.Release(rd.rank)
		cs.comm.Hold(rd.rank)
		rd.job.Eng.At(rd.job.Eng.Now(), cont)
		return
	}
	cs.waiters[idx][rd.rank] = cont
	rd.job.PyStack.Set(rd.rank, pystack.FrameCollWait)
	cs.comm.Release(rd.rank)
}

// sleep schedules cont after d unless the rank's data path is stalled.
func (rd *rankDriver) sleep(d time.Duration, stalled *bool, cont func()) {
	if stalled != nil && *stalled {
		return // the frame stays where setFrame left it; the rank hangs
	}
	rd.job.Eng.After(d, cont)
}

// compute runs nominal duration d on the GPU (stretched by the straggler
// factor, jittered when configured) unless the rank's compute is stalled.
func (rd *rankDriver) compute(d time.Duration, cont func()) {
	if rd.computeStalled {
		return
	}
	if jit := rd.job.Cfg.ComputeJitter; jit > 0 {
		f := 1 + jit*(2*rd.job.Eng.Rand().Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	rd.job.GPUs[rd.rank].Compute(d, func() {
		if rd.computeStalled {
			return
		}
		cont()
	})
}

// runIteration drives one full iteration of the rank's script, then loops.
func (rd *rankDriver) runIteration() {
	j := rd.job
	if j.stopped {
		return
	}
	iter := rd.iter
	if _, ok := j.iterStart[iter]; !ok {
		j.iterStart[iter] = j.Eng.Now()
	}
	j.PyStack.Set(rd.rank, pystack.FrameDataloader)
	rd.sleep(j.Cfg.DataloaderDelay, &rd.dataStalled, func() {
		rd.forwardChain(0, func() {
			rd.backwardChain(j.Cluster.PP-1, func() {
				rd.gradientSync(func() {
					rd.maybeCheckpoint(iter, func() {
						now := j.Eng.Now()
						j.iterDone[rd.rank]++
						if j.OnRankIteration != nil {
							j.OnRankIteration(rd.rank, iter, now)
						}
						j.doneRanks[iter]++
						if j.doneRanks[iter] == j.Cluster.WorldSize() {
							j.iterEnd[iter] = now
							if j.OnIteration != nil {
								j.OnIteration(iter, j.iterStart[iter], now)
							}
						}
						rd.iter++
						j.PyStack.Set(rd.rank, pystack.FrameIdle)
						j.Eng.At(now, rd.runIteration)
					})
				})
			})
		})
	})
}

// maybeCheckpoint pauses the rank for the checkpoint write every
// CheckpointEvery iterations. A stalled checkpoint leaves the rank's stack
// in checkpoint.save forever — py-spy's territory.
func (rd *rankDriver) maybeCheckpoint(iter int, cont func()) {
	j := rd.job
	every := j.Cfg.CheckpointEvery
	if every <= 0 || (iter+1)%every != 0 {
		cont()
		return
	}
	j.PyStack.Set(rd.rank, pystack.FrameCheckpoint)
	rd.sleep(j.Cfg.CheckpointDelay, &rd.ckptStalled, cont)
}

// forwardChain walks pipeline positions 0..PP-1: this rank computes (and
// runs its TP all-reduces) at its own stage, and every rank awaits every
// pipeline transfer in canonical order (non-participants finish instantly).
func (rd *rankDriver) forwardChain(k int, cont func()) {
	j := rd.job
	S := j.Cluster.PP
	step := func() {
		if k < S-1 {
			src, dst := k, k+1
			rd.await(rd.pp, func() ccl.OpSpec {
				return ccl.OpSpec{Kind: trace.OpSendRecv, Bytes: j.Cfg.PPBytes, Src: src, Dst: dst}
			}, func() { rd.forwardChain(k+1, cont) })
		} else {
			cont()
		}
	}
	if k == rd.coord.PP {
		rd.layerLoop(0, j.Cfg.ComputePerLayer, step)
	} else {
		step()
	}
}

// backwardChain walks positions PP-1..0 with backward compute (2× forward).
func (rd *rankDriver) backwardChain(k int, cont func()) {
	j := rd.job
	step := func() {
		if k > 0 {
			src, dst := k, k-1
			rd.await(rd.pp, func() ccl.OpSpec {
				return ccl.OpSpec{Kind: trace.OpSendRecv, Bytes: j.Cfg.PPBytes, Src: src, Dst: dst}
			}, func() { rd.backwardChain(k-1, cont) })
		} else {
			cont()
		}
	}
	if k == rd.coord.PP {
		rd.layerLoop(0, 2*j.Cfg.ComputePerLayer, step)
	} else {
		step()
	}
}

// layerLoop runs per-layer compute followed by the layer's TP all-reduce.
func (rd *rankDriver) layerLoop(l int, perLayer time.Duration, cont func()) {
	j := rd.job
	if l >= j.Cfg.LayersPerStage {
		cont()
		return
	}
	d := perLayer
	if rd.rank == 0 && l == 0 {
		d += j.Cfg.MasterExtra // the heavier master-rank workload of §9
	}
	j.PyStack.Set(rd.rank, pystack.FrameForward)
	rd.compute(d, func() {
		if j.Cluster.TP > 1 {
			rd.await(rd.tp, func() ccl.OpSpec {
				return ccl.OpSpec{Kind: trace.OpAllReduce, Bytes: j.Cfg.TPBytesPerLayer}
			}, func() { rd.layerLoop(l+1, perLayer, cont) })
		} else {
			rd.layerLoop(l+1, perLayer, cont)
		}
	})
}

// gradientSync runs the data-parallel gradient all-reduce.
func (rd *rankDriver) gradientSync(cont func()) {
	j := rd.job
	if j.Cluster.DP <= 1 {
		cont()
		return
	}
	rd.await(rd.dp, func() ccl.OpSpec {
		spec := ccl.OpSpec{Kind: trace.OpAllReduce, Bytes: j.Cfg.DPBytes}
		if skips := j.takePendingDPSkips(rd.dp); len(skips) > 0 {
			spec.Skip = skips
		}
		return spec
	}, cont)
}

// takePendingDPSkips consumes the sync-mismatch fault requests for a DP comm.
func (j *Job) takePendingDPSkips(cs *commState) map[topo.Rank]bool {
	var out map[topo.Rank]bool
	for _, rd := range j.ranks {
		if rd.skipNextDP && rd.dp == cs {
			if out == nil {
				out = make(map[topo.Rank]bool)
			}
			out[rd.rank] = true
			rd.skipNextDP = false
		}
	}
	return out
}
