// Package seedjob builds the canonical seeded single-job Service that
// mycroft-trace (in-process mode) and mycroft-serve (single-job mode) both
// host. Keeping the wiring in one place is what makes the two transports
// byte-identical for the same flags: the CLIs cannot drift apart, and the
// equivalence test in cmd/mycroft-trace exercises exactly the constructor
// the daemon runs.
package seedjob

import (
	"time"

	"mycroft"
	"mycroft/internal/faults"
)

// Build wires one job onto a fresh Service: self-healing policy attached
// first when remedy is set (with the backend re-arm tightened to 10s so a
// failed mitigation is re-detected inside the verify window, matching the
// self-healing builtins), then Start, then the fault injection. faultName
// "none" skips injection.
func Build(id mycroft.JobID, seed int64, faultName string, rank int, at time.Duration, remedy bool) (*mycroft.Service, error) {
	svc, start, err := Assemble(id, seed, faultName, rank, at, remedy)
	if err != nil {
		return nil, err
	}
	start()
	return svc, nil
}

// Assemble is Build stopped just short of Start: the Service is fully wired
// (job added, policy attached) but not yet running, and the returned start
// closure performs the Start + fault injection. The gap is where a caller
// attaches incident recorders — a recorder armed before start() captures the
// run byte-for-byte from virtual time zero.
func Assemble(id mycroft.JobID, seed int64, faultName string, rank int, at time.Duration, remedy bool) (*mycroft.Service, func(), error) {
	opts := mycroft.JobOptions{}
	if remedy {
		opts.Backend.RearmDelay = 10 * time.Second
	}
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: seed})
	job, err := svc.AddJob(id, opts)
	if err != nil {
		return nil, nil, err
	}
	if remedy {
		p := mycroft.SelfHealPolicy()
		p.Rules = append(p.Rules, mycroft.RemedyRule{Name: "page", Action: mycroft.RemedyEscalate})
		if err := svc.AttachPolicy(job.ID, p); err != nil {
			return nil, nil, err
		}
	}
	start := func() {
		svc.Start()
		if faultName != "none" {
			job.Inject(mycroft.Fault{Kind: faults.Kind(faultName), Rank: mycroft.Rank(rank), At: at})
		}
	}
	return svc, start, nil
}
