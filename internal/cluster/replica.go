package cluster

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"mycroft/internal/api"
)

// DefaultTraceMirror bounds how many trace records a replica keeps per job.
// The mirror is best-effort context for post-failover spelunking; the event
// log (triggers, reports, actions, health) is the exact record.
const DefaultTraceMirror = 65536

// ReplicaJob is everything a peer holds for one job it follows: the
// replicated event log, the latest coarse snapshot, the trace mirror and
// the handoff/promotion state.
type ReplicaJob struct {
	Job     string
	Primary string
	Log     *EventLog

	mu        sync.Mutex
	snapshot  *api.ClusterSnapshot
	trace     []api.TraceRecord // ascending by (Time, arrival)
	traceWM   int64             // max record Time received
	gaps      uint64            // seq numbers lost in transit, lifetime
	promoted  bool
	lastBatch time.Time // wall clock, liveness only
}

// Snapshot returns the latest replicated coarse state (nil before the
// first batch carrying one).
func (rj *ReplicaJob) Snapshot() *api.ClusterSnapshot {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.snapshot
}

// Promoted reports whether this peer received a handoff for the job.
func (rj *ReplicaJob) Promoted() bool {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.promoted
}

// Gaps reports sequence numbers lost in transit, lifetime.
func (rj *ReplicaJob) Gaps() uint64 {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.gaps
}

// LastBatch is the wall-clock arrival of the latest replication batch.
func (rj *ReplicaJob) LastBatch() time.Time {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.lastBatch
}

// TraceWatermark is the max record Time the mirror has received.
func (rj *ReplicaJob) TraceWatermark() int64 {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.traceWM
}

// Events returns the replicated events in seq order (the full retained log).
func (rj *ReplicaJob) Events() []api.SeqEvent {
	out, _ := rj.Log.TailAfter(0, rj.Log.Len()+1)
	return out
}

// TraceRecords returns the mirror records matching the predicate, in
// arrival (time-ascending) order. limit <= 0 returns everything.
func (rj *ReplicaJob) TraceRecords(match func(api.TraceRecord) bool, limit int) []api.TraceRecord {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	var out []api.TraceRecord
	for _, r := range rj.trace {
		if match != nil && !match(r) {
			continue
		}
		out = append(out, r)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// ReplicaStore holds every job this peer follows, keyed by job id. Batches
// arrive over /v1/cluster/replicate; jobs are created on first contact so a
// follower needs no pre-provisioning.
type ReplicaStore struct {
	mu       sync.Mutex
	logCap   int
	traceCap int
	jobs     map[string]*ReplicaJob
}

// NewReplicaStore builds an empty store. logCap/traceCap <= 0 pick the
// package defaults.
func NewReplicaStore(logCap, traceCap int) *ReplicaStore {
	if traceCap <= 0 {
		traceCap = DefaultTraceMirror
	}
	return &ReplicaStore{logCap: logCap, traceCap: traceCap, jobs: make(map[string]*ReplicaJob)}
}

// Job returns the replica state for one job, or nil when this peer has
// never received a batch for it.
func (rs *ReplicaStore) Job(id string) *ReplicaJob {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.jobs[id]
}

// Jobs lists followed job ids, sorted.
func (rs *ReplicaStore) Jobs() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.jobs))
	for id := range rs.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// obtain returns (creating if needed) the job slot. Callers must not hold
// rs.mu.
func (rs *ReplicaStore) obtain(job, primary string) *ReplicaJob {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rj := rs.jobs[job]
	if rj == nil {
		rj = &ReplicaJob{Job: job, Primary: primary, Log: NewEventLog(rs.logCap)}
		rs.jobs[job] = rj
	}
	return rj
}

// Apply ingests one replication batch and returns the ack the sender uses
// as its next cursor.
func (rs *ReplicaStore) Apply(req api.ReplicateRequest) api.ReplicateResponse {
	if req.Job == "" {
		return api.ReplicateResponse{}
	}
	rj := rs.obtain(req.Job, req.From)
	gap := rj.Log.AppendEntries(req.Entries)

	rj.mu.Lock()
	defer rj.mu.Unlock()
	rj.gaps += gap
	rj.lastBatch = time.Now()
	if req.Snapshot != nil {
		snap := *req.Snapshot
		rj.snapshot = &snap
	}
	for _, r := range req.Trace {
		if r.TimeNs > rj.traceWM {
			rj.traceWM = r.TimeNs
		}
		rj.trace = append(rj.trace, r)
	}
	if over := len(rj.trace) - rs.traceCap; over > 0 {
		rj.trace = append(rj.trace[:0], rj.trace[over:]...)
	}
	if req.TraceWatermarkNs > rj.traceWM {
		rj.traceWM = req.TraceWatermarkNs
	}
	return api.ReplicateResponse{AckSeq: rj.Log.Watermark(), TraceAckNs: rj.traceWM, Gap: gap}
}

// Promote records a handoff: this peer now answers authoritatively for the
// job. It returns the lag (entries the departing primary had that this peer
// does not) — 0 after a clean final flush.
func (rs *ReplicaStore) Promote(job, from string, primaryWatermark uint64) (lag uint64, err error) {
	rj := rs.Job(job)
	if rj == nil {
		// A handoff for a job never replicated here still succeeds — the
		// follower can only serve what it has (nothing), but refusing would
		// strand the draining primary.
		rj = rs.obtain(job, from)
	}
	rj.mu.Lock()
	defer rj.mu.Unlock()
	rj.promoted = true
	if wm := rj.Log.Watermark(); primaryWatermark > wm {
		lag = primaryWatermark - wm
	}
	return lag, nil
}

// ---------------------------------------------------------------------------
// Wire-level query evaluation over replicated state.
//
// A replica answers the paged query endpoints for jobs it follows by
// deriving results from the event log (triggers, reports, remediations) and
// the trace mirror. The filters mirror the service-side query layer's
// semantics on the wire forms; pagination clamps negatives exactly like the
// in-process paginate helper.

// Page normalizes offset/limit over n matches and returns the page
// bounds plus the NextOffset convention (-1 when the page exhausts them).
func Page(n, offset, limit int) (lo, hi, next int) {
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	hi = n
	if limit > 0 && offset+limit < n {
		hi = offset + limit
	}
	next = -1
	if hi < n {
		next = hi
	}
	return offset, hi, next
}

// inWindow applies the (from, to] wire time window; to 0 = unbounded.
func inWindow(atNs, fromNs, toNs int64) bool {
	if atNs < fromNs {
		return false
	}
	if toNs > 0 && atNs > toNs {
		return false
	}
	return true
}

// QueryTriggers derives a TriggersResponse from the replicated event log.
func (rj *ReplicaJob) QueryTriggers(req api.TriggersRequest) api.TriggersResponse {
	var all []api.JobTrigger
	for _, se := range rj.Events() {
		e := se.Event
		if e.Trigger == nil {
			continue
		}
		t := *e.Trigger
		if len(req.Kinds) > 0 && !slices.Contains(req.Kinds, t.Kind) {
			continue
		}
		if len(req.Ranks) > 0 && !slices.Contains(req.Ranks, t.Rank) {
			continue
		}
		if !inWindow(t.AtNs, req.FromNs, req.ToNs) {
			continue
		}
		all = append(all, api.JobTrigger{Job: rj.Job, Trigger: t})
	}
	lo, hi, next := Page(len(all), req.Offset, req.Limit)
	return api.TriggersResponse{Triggers: all[lo:hi], Total: len(all), NextOffset: next}
}

// QueryReports derives a ReportsResponse from the replicated event log.
func (rj *ReplicaJob) QueryReports(req api.ReportsRequest) api.ReportsResponse {
	var all []api.JobReport
	for _, se := range rj.Events() {
		e := se.Event
		if e.Report == nil {
			continue
		}
		r := *e.Report
		if len(req.Suspects) > 0 && !slices.Contains(req.Suspects, r.Suspect) {
			continue
		}
		if len(req.Categories) > 0 && !slices.Contains(req.Categories, r.Category) {
			continue
		}
		if req.Comm != 0 && r.CommID != req.Comm {
			continue
		}
		if !inWindow(r.AnalyzedAtNs, req.FromNs, req.ToNs) {
			continue
		}
		all = append(all, api.JobReport{Job: rj.Job, Report: r})
	}
	lo, hi, next := Page(len(all), req.Offset, req.Limit)
	return api.ReportsResponse{Reports: all[lo:hi], Total: len(all), NextOffset: next}
}

// QueryRemediations derives a RemediationsResponse from the event log.
func (rj *ReplicaJob) QueryRemediations(req api.RemediationsRequest) api.RemediationsResponse {
	var all []api.JobAttempt
	for _, se := range rj.Events() {
		e := se.Event
		if e.Action == nil {
			continue
		}
		a := *e.Action
		if len(req.Ranks) > 0 && !slices.Contains(req.Ranks, a.Action.Rank) {
			continue
		}
		if len(req.Actions) > 0 && !slices.Contains(req.Actions, a.Action.Kind) {
			continue
		}
		if len(req.Outcomes) > 0 && !slices.Contains(req.Outcomes, a.Outcome) {
			continue
		}
		if !inWindow(a.ReportedAtNs, req.FromNs, req.ToNs) {
			continue
		}
		all = append(all, api.JobAttempt{Job: rj.Job, Attempt: a})
	}
	lo, hi, next := Page(len(all), req.Offset, req.Limit)
	return api.RemediationsResponse{Attempts: all[lo:hi], Total: len(all), NextOffset: next}
}

// QueryTrace answers from the trace mirror. The mirror has no cursor
// support: pages are Limit-bounded prefixes and Next is always nil, which
// the response's Total makes visible.
func (rj *ReplicaJob) QueryTrace(req api.TraceRequest) api.TraceResponse {
	match := func(r api.TraceRecord) bool {
		if len(req.Ranks) > 0 && !slices.Contains(req.Ranks, r.Rank) {
			return false
		}
		if req.Comm != 0 && r.CommID != req.Comm {
			return false
		}
		if len(req.Kinds) > 0 && !slices.Contains(req.Kinds, r.Kind) {
			return false
		}
		return inWindow(r.TimeNs, req.FromNs, req.ToNs)
	}
	total := len(rj.TraceRecords(match, 0))
	recs := rj.TraceRecords(match, req.Limit)
	return api.TraceResponse{Job: rj.Job, Records: recs, Total: total}
}

// Describe renders this replica slot as a ClusterJob row.
func (rj *ReplicaJob) Describe() api.ClusterJob {
	return api.ClusterJob{
		ID: rj.Job, Replicated: true, Promoted: rj.Promoted(), Watermark: rj.Log.Watermark(),
	}
}

func (rj *ReplicaJob) String() string {
	return fmt.Sprintf("replica[%s] wm=%d gaps=%d promoted=%v", rj.Job, rj.Log.Watermark(), rj.Gaps(), rj.Promoted())
}
