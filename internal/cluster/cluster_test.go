package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"mycroft/internal/api"
)

func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	b := NewRing([]string{"gamma", "alpha", "beta", "alpha"}, 64) // order + dups must not matter
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("size: %d / %d", a.Size(), b.Size())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("job-%d", i)
		ca, cb := a.Candidates(key, 3), b.Candidates(key, 3)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("placement diverged for %s: %v vs %v", key, ca, cb)
		}
		if len(ca) != 3 {
			t.Fatalf("want 3 distinct candidates, got %v", ca)
		}
		seen := map[string]bool{}
		for _, p := range ca {
			if seen[p] {
				t.Fatalf("duplicate candidate in %v", ca)
			}
			seen[p] = true
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Primary(fmt.Sprintf("job-%d", i))]++
	}
	for _, p := range r.Peers() {
		if counts[p] == 0 {
			t.Fatalf("peer %s owns nothing: %v", p, counts)
		}
	}
}

// TestRingPinnedPlacement pins the FNV-1a placement for the exact peer
// names and job ids the CI 3-peer smoke uses. If this test's expectations
// ever change, .github/workflows/ci.yml's cluster-smoke step (which
// hardcodes the primary it kills) must change with it.
func TestRingPinnedPlacement(t *testing.T) {
	r := NewRing([]string{"p1", "p2", "p3"}, DefaultVNodes)
	want := map[string][]string{
		"job-0": {"p2", "p1"},
		"job-1": {"p2", "p3"},
		"job-2": {"p1", "p2"},
		"job-3": {"p3", "p2"},
	}
	for key, exp := range want {
		if got := r.Candidates(key, 2); !reflect.DeepEqual(got, exp) {
			t.Fatalf("placement moved: %s -> %v (CI expects %v)", key, got, exp)
		}
	}
	if p := r.Primary("job-0"); p != "p2" {
		t.Fatalf("job-0 primary moved: %s (CI kills p2)", p)
	}
}

func TestEventLogAppendAndTail(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < 10; i++ {
		seq := l.Append(api.Event{Job: "j", Kind: "trigger", AtNs: int64(i)})
		if seq != uint64(i+1) {
			t.Fatalf("seq %d != %d", seq, i+1)
		}
	}
	out, wm := l.TailAfter(7, 100)
	if wm != 10 || len(out) != 3 || out[0].Seq != 8 {
		t.Fatalf("tail: wm=%d out=%v", wm, out)
	}
	out, _ = l.TailAfter(0, 2)
	if len(out) != 2 || out[1].Seq != 2 {
		t.Fatalf("max clamp: %v", out)
	}
}

func TestEventLogTrimSurfacesAsSeqJump(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(api.Event{Job: "j", AtNs: int64(i)})
	}
	if l.Len() != 4 || l.Trimmed() != 6 {
		t.Fatalf("len=%d trimmed=%d", l.Len(), l.Trimmed())
	}
	// A reader whose cursor predates the trim sees the jump, never a lie.
	out, wm := l.TailAfter(2, 100)
	if wm != 10 || len(out) != 4 || out[0].Seq != 7 {
		t.Fatalf("post-trim tail: wm=%d out=%v", wm, out)
	}
}

func TestEventLogAppendEntriesGapAccounting(t *testing.T) {
	l := NewEventLog(0)
	gap := l.AppendEntries([]api.SeqEvent{{Seq: 1}, {Seq: 2}, {Seq: 3}})
	if gap != 0 || l.Watermark() != 3 {
		t.Fatalf("clean apply: gap=%d wm=%d", gap, l.Watermark())
	}
	// Duplicate redelivery is idempotent.
	if gap := l.AppendEntries([]api.SeqEvent{{Seq: 2}, {Seq: 3}}); gap != 0 || l.Len() != 3 {
		t.Fatalf("dup apply: gap=%d len=%d", gap, l.Len())
	}
	// A lost batch shows up as an exact gap count.
	if gap := l.AppendEntries([]api.SeqEvent{{Seq: 7}}); gap != 3 {
		t.Fatalf("want gap 3 (seqs 4,5,6), got %d", gap)
	}
	// A fresh follower joining late counts the missed prefix.
	l2 := NewEventLog(0)
	if gap := l2.AppendEntries([]api.SeqEvent{{Seq: 5}}); gap != 4 {
		t.Fatalf("late join: want gap 4, got %d", gap)
	}
}

func TestEventLogTailWait(t *testing.T) {
	l := NewEventLog(0)
	done := make(chan []api.SeqEvent, 1)
	go func() {
		out, _ := l.TailWait(0, 10, 2*time.Second)
		done <- out
	}()
	time.Sleep(20 * time.Millisecond)
	l.Append(api.Event{Job: "j", Kind: "trigger"})
	select {
	case out := <-done:
		if len(out) != 1 || out[0].Seq != 1 {
			t.Fatalf("woke with %v", out)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("TailWait never woke")
	}
	// Expired wait returns empty, not an error.
	out, wm := l.TailWait(5, 10, 10*time.Millisecond)
	if len(out) != 0 || wm != 1 {
		t.Fatalf("expired wait: %v wm=%d", out, wm)
	}
}

func TestReplicaStoreApplyAndQueries(t *testing.T) {
	rs := NewReplicaStore(0, 0)
	resp := rs.Apply(api.ReplicateRequest{
		From: "p1", Job: "job-0",
		Entries: []api.SeqEvent{
			{Seq: 1, Event: api.Event{Job: "job-0", Kind: "trigger", AtNs: 100, Trigger: &api.Trigger{Kind: "timeout", Rank: 5, AtNs: 100}}},
			{Seq: 2, Event: api.Event{Job: "job-0", Kind: "report", AtNs: 200, Report: &api.Report{Suspect: 5, Category: "nic", AnalyzedAtNs: 200}}},
			{Seq: 3, Event: api.Event{Job: "job-0", Kind: "remedy", AtNs: 300, Action: &api.Attempt{Action: api.Action{Kind: "isolate", Rank: 5}, Outcome: "resolved", ReportedAtNs: 300}}},
		},
		Trace:            []api.TraceRecord{{Kind: "op", TimeNs: 50, Rank: 1}, {Kind: "op", TimeNs: 150, Rank: 5}},
		TraceWatermarkNs: 150,
		Snapshot:         &api.ClusterSnapshot{NowNs: 400, Job: api.JobInfo{ID: "job-0", WorldSize: 8}},
		Watermark:        3,
	})
	if resp.AckSeq != 3 || resp.Gap != 0 || resp.TraceAckNs != 150 {
		t.Fatalf("ack: %+v", resp)
	}
	rj := rs.Job("job-0")
	if rj == nil {
		t.Fatal("job not stored")
	}
	if s := rj.Snapshot(); s == nil || s.Job.WorldSize != 8 {
		t.Fatalf("snapshot: %+v", s)
	}

	tr := rj.QueryTriggers(api.TriggersRequest{Ranks: []int{5}})
	if tr.Total != 1 || len(tr.Triggers) != 1 || tr.Triggers[0].Trigger.Kind != "timeout" {
		t.Fatalf("triggers: %+v", tr)
	}
	if tr := rj.QueryTriggers(api.TriggersRequest{Ranks: []int{6}}); tr.Total != 0 {
		t.Fatalf("rank filter leak: %+v", tr)
	}
	rp := rj.QueryReports(api.ReportsRequest{Categories: []string{"nic"}})
	if rp.Total != 1 || rp.Reports[0].Report.Suspect != 5 {
		t.Fatalf("reports: %+v", rp)
	}
	rm := rj.QueryRemediations(api.RemediationsRequest{Outcomes: []string{"resolved"}})
	if rm.Total != 1 || rm.Attempts[0].Attempt.Action.Kind != "isolate" {
		t.Fatalf("remediations: %+v", rm)
	}
	tq := rj.QueryTrace(api.TraceRequest{FromNs: 100})
	if tq.Total != 1 || tq.Records[0].TimeNs != 150 {
		t.Fatalf("trace window: %+v", tq)
	}

	// Pagination conventions match the live side: NextOffset -1 when done.
	page := rj.QueryTriggers(api.TriggersRequest{Limit: 1})
	if page.NextOffset != -1 || len(page.Triggers) != 1 {
		t.Fatalf("page: %+v", page)
	}
}

func TestReplicaStorePromote(t *testing.T) {
	rs := NewReplicaStore(0, 0)
	rs.Apply(api.ReplicateRequest{From: "p1", Job: "j", Entries: []api.SeqEvent{{Seq: 1}, {Seq: 2}}, Watermark: 2})
	lag, err := rs.Promote("j", "p1", 5)
	if err != nil || lag != 3 {
		t.Fatalf("lag=%d err=%v", lag, err)
	}
	if !rs.Job("j").Promoted() {
		t.Fatal("not promoted")
	}
	// Handoff for a never-seen job still succeeds (empty follower).
	if lag, err := rs.Promote("ghost", "p1", 4); err != nil || lag != 4 {
		t.Fatalf("ghost handoff: lag=%d err=%v", lag, err)
	}
}

func TestNodePlacementAndHealthLadder(t *testing.T) {
	peers := map[string]string{"p1": "127.0.0.1:1", "p2": "127.0.0.1:2", "p3": "127.0.0.1:3"}
	n, err := NewNode("c1", "p2", "127.0.0.1:2", peers, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, reps := n.Placement("job-0")
	if p == "" || len(reps) != 1 || reps[0] == p {
		t.Fatalf("placement: %s %v", p, reps)
	}
	if n.Owns("job-0") != (p == "p2") {
		t.Fatal("Owns disagrees with Placement")
	}

	// Ladder: alive → suspect on one miss → dead on the third → alive on success.
	if n.State("p1") != api.PeerAlive {
		t.Fatalf("initial: %s", n.State("p1"))
	}
	n.MarkContact("p1", false)
	if n.State("p1") != api.PeerSuspect || !n.Alive("p1") {
		t.Fatalf("after 1 miss: %s", n.State("p1"))
	}
	n.MarkContact("p1", false)
	n.MarkContact("p1", false)
	if n.State("p1") != api.PeerDead || n.Alive("p1") {
		t.Fatalf("after 3 misses: %s", n.State("p1"))
	}
	n.MarkContact("p1", true)
	if n.State("p1") != api.PeerAlive {
		t.Fatalf("after recovery: %s", n.State("p1"))
	}
	if n.State("p2") != api.PeerAlive { // self
		t.Fatal("self must read alive")
	}
}

func TestNodeGossipMergeByFreshness(t *testing.T) {
	peers := map[string]string{"p1": "a", "p2": "b", "p3": "c"}
	n, _ := NewNode("c1", "p1", "a", peers, 1, 0)
	n.MarkContact("p3", false)
	n.MarkContact("p3", false)
	n.MarkContact("p3", false)
	if n.State("p3") != api.PeerDead {
		t.Fatal("setup: p3 should be dead")
	}
	// A fresher gossip row saying p3 recovered wins.
	n.Merge([]api.ClusterPeer{{Name: "p3", State: api.PeerAlive, LastSeenUnixMs: time.Now().Add(time.Second).UnixMilli()}})
	if n.State("p3") != api.PeerAlive {
		t.Fatalf("merge did not revive: %s", n.State("p3"))
	}
	// A stale row (LastSeen zero or older) is ignored.
	n.Merge([]api.ClusterPeer{{Name: "p3", State: api.PeerDead}})
	if n.State("p3") != api.PeerAlive {
		t.Fatal("stale row overwrote fresh state")
	}
	// Rows about self or strangers are ignored.
	n.Merge([]api.ClusterPeer{
		{Name: "p1", State: api.PeerDead, LastSeenUnixMs: time.Now().UnixMilli()},
		{Name: "nobody", State: api.PeerDead, LastSeenUnixMs: time.Now().UnixMilli()},
	})
	if n.State("p1") != api.PeerAlive {
		t.Fatal("self row applied")
	}
}

func TestNodeReplicasClamped(t *testing.T) {
	n, _ := NewNode("c1", "solo", "a", map[string]string{"solo": "a"}, 2, 0)
	if n.Replicas != 0 {
		t.Fatalf("solo cluster must clamp R to 0, got %d", n.Replicas)
	}
	_, reps := n.Placement("job-0")
	if len(reps) != 0 {
		t.Fatalf("solo replicas: %v", reps)
	}
}

func BenchmarkClusterRoute(b *testing.B) {
	r := NewRing([]string{"p1", "p2", "p3", "p4", "p5"}, DefaultVNodes)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Candidates(keys[i%len(keys)], 3)
	}
}
