// Package cluster is the coordination layer that turns N independent
// mycroft-serve processes into one diagnosis plane: a consistent-hash ring
// that places jobs on peers, a seq-numbered event log that makes a job's
// event stream resumable across peers, a replica store that holds the
// asynchronously replicated state of jobs a peer follows, and a peer table
// with a gossip-fed health ladder.
//
// Everything here is deterministic given the same inputs: the ring hashes
// with FNV-1a (splitmix64-finished) over stable strings, so every peer (and every DialCluster
// client) computes the identical placement from the same peer list without
// any coordination traffic. The package deliberately speaks only wire types
// (internal/api) — it never touches the engine — so both the serving and the
// dialing side can share it without an import cycle.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is how many virtual nodes each peer contributes to the ring
// when the caller does not say. More vnodes smooth placement at the cost of
// a larger (still tiny) sorted point table.
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of (peer names, vnodes): every participant that agrees on the
// membership list computes identical primaries and replica sets, which is
// what lets clients route without asking anyone.
type Ring struct {
	vnodes int
	peers  []string
	points []ringPoint // ascending by hash
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds the ring. Peer order does not matter; duplicates are
// collapsed. vnodes <= 0 means DefaultVNodes.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{vnodes: vnodes}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer // total order even on hash ties
	})
	sort.Strings(r.peers)
	return r
}

// Peers lists the ring members, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size reports how many peers the ring holds.
func (r *Ring) Size() int { return len(r.peers) }

// Primary names the peer that owns key. Empty ring returns "".
func (r *Ring) Primary(key string) string {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// Candidates returns up to n distinct peers for key in preference order:
// the primary first, then the successor peers clockwise around the ring —
// the job's replica set. n larger than the membership returns every peer.
func (r *Ring) Candidates(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a barely diffuses the last byte of short shared-prefix keys
	// ("job-0".."job-99" hash into one narrow band, collapsing placement onto
	// one peer), so finish with a splitmix64 mix.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
