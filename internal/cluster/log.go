package cluster

import (
	"sync"
	"time"

	"mycroft/internal/api"
)

// DefaultLogCap bounds a per-job event log when the caller does not say.
// The log is the failover window: a subscriber that resumes on another peer
// can only replay what the log still holds, and anything trimmed past its
// cursor is counted (exactly, via the seq gap) as dropped.
const DefaultLogCap = 4096

// EventLog is one job's sequence-numbered event history. A primary appends
// domain events as they dispatch (Append assigns gap-free ascending seqs);
// a replica applies replicated entries preserving the primary's seqs
// (AppendEntries). TailAfter reads past a cursor, and waiters park on a
// broadcast channel so a tail long-poll costs nothing while the log is
// quiet.
type EventLog struct {
	mu      sync.Mutex
	cap     int
	entries []api.SeqEvent
	lastSeq uint64        // highest seq held (or assigned)
	trimmed uint64        // entries aged out of the front, lifetime
	wake    chan struct{} // closed to broadcast growth; re-armed each time
}

// NewEventLog builds a log holding at most cap entries (<=0 = DefaultLogCap).
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = DefaultLogCap
	}
	return &EventLog{cap: cap, wake: make(chan struct{})}
}

// Append assigns the next sequence number to e and stores it, trimming the
// front when the log is full. It returns the assigned seq.
func (l *EventLog) Append(e api.Event) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSeq++
	l.push(api.SeqEvent{Seq: l.lastSeq, Event: e})
	return l.lastSeq
}

// AppendEntries applies replicated entries, preserving their primary-
// assigned seqs. Entries at or below the current head are duplicates of an
// already-applied batch and are skipped. It returns how many sequence
// numbers were skipped over (a gap means a batch was lost in transit —
// the sender's cursor protocol should keep this 0).
func (l *EventLog) AppendEntries(entries []api.SeqEvent) (gap uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, se := range entries {
		if se.Seq <= l.lastSeq {
			continue
		}
		if l.lastSeq != 0 || len(l.entries) > 0 {
			gap += se.Seq - l.lastSeq - 1
		} else if se.Seq > 1 {
			// First entry ever: seqs 1..Seq-1 happened before this replica
			// started following. That is lag, not loss in transit; count it
			// so the caller can decide.
			gap += se.Seq - 1
		}
		l.lastSeq = se.Seq
		l.push(se)
	}
	return gap
}

// push stores one entry and trims. Callers hold l.mu.
func (l *EventLog) push(se api.SeqEvent) {
	l.entries = append(l.entries, se)
	if over := len(l.entries) - l.cap; over > 0 {
		l.entries = append(l.entries[:0], l.entries[over:]...)
		l.trimmed += uint64(over)
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// Watermark is the highest sequence number the log has seen.
func (l *EventLog) Watermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Len reports how many entries the log currently holds.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Trimmed reports how many entries have aged out of the front, lifetime.
func (l *EventLog) Trimmed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimmed
}

// TailAfter returns up to max entries with Seq > after, plus the current
// watermark. The caller detects trimming (and replication gaps) from the
// sequence jump between its cursor and the first returned entry — the log
// never hides a discontinuity.
func (l *EventLog) TailAfter(after uint64, max int) (out []api.SeqEvent, watermark uint64) {
	if max <= 0 {
		max = 256
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, se := range l.entries {
		if se.Seq <= after {
			continue
		}
		out = append(out, se)
		if len(out) >= max {
			break
		}
	}
	return out, l.lastSeq
}

// TailWait is TailAfter with a bounded wait: when nothing is past the
// cursor it parks until the log grows or the timeout lapses, so a tail
// long-poll does not busy-spin. The wait is wall-clock.
func (l *EventLog) TailWait(after uint64, max int, timeout time.Duration) ([]api.SeqEvent, uint64) {
	deadline := time.Now().Add(timeout)
	for {
		out, wm := l.TailAfter(after, max)
		if len(out) > 0 || timeout <= 0 {
			return out, wm
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return out, wm
		}
		l.mu.Lock()
		wake := l.wake
		l.mu.Unlock()
		timer := time.NewTimer(remain)
		select {
		case <-wake:
		case <-timer.C:
		}
		timer.Stop()
	}
}
