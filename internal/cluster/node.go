package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mycroft/internal/api"
)

// MissesBeforeDead is how many consecutive failed direct contacts move a
// peer from suspect to dead. One miss is suspect; a single success resets
// the ladder to alive.
const MissesBeforeDead = 3

// Peer is one row of a Node's membership table.
type Peer struct {
	Name     string
	Addr     string
	misses   int       // consecutive failed direct contacts
	lastSeen time.Time // wall clock; zero = never heard from
	dead     bool      // sticky once misses crosses the threshold, until a success
}

// State renders the health ladder for one peer.
func (p *Peer) state() string {
	switch {
	case p.dead:
		return api.PeerDead
	case p.misses > 0:
		return api.PeerSuspect
	default:
		return api.PeerAlive
	}
}

// Node is one peer's view of the cluster: static membership (from flags),
// the ring built over it, and a wall-clock health table fed by direct
// contact outcomes and gossip. All methods are safe for concurrent use.
type Node struct {
	ClusterID string
	Self      string
	SelfAddr  string
	Replicas  int // R: followers per job
	VNodes    int

	ring *Ring

	mu    sync.Mutex
	peers map[string]*Peer // includes self
}

// NewNode builds a node. peers maps name → addr and must include self (it
// is added if missing). replicas is clamped to the number of other peers;
// vnodes <= 0 picks DefaultVNodes.
func NewNode(clusterID, self, selfAddr string, peers map[string]string, replicas, vnodes int) (*Node, error) {
	if clusterID == "" {
		return nil, fmt.Errorf("cluster: empty cluster id")
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self name")
	}
	n := &Node{
		ClusterID: clusterID, Self: self, SelfAddr: selfAddr,
		Replicas: replicas, VNodes: vnodes,
		peers: make(map[string]*Peer, len(peers)+1),
	}
	names := make([]string, 0, len(peers)+1)
	for name, addr := range peers {
		n.peers[name] = &Peer{Name: name, Addr: addr}
		names = append(names, name)
	}
	if _, ok := n.peers[self]; !ok {
		n.peers[self] = &Peer{Name: self, Addr: selfAddr}
		names = append(names, self)
	} else if selfAddr != "" {
		n.peers[self].Addr = selfAddr
	}
	if n.Replicas < 0 {
		n.Replicas = 0
	}
	if max := len(names) - 1; n.Replicas > max {
		n.Replicas = max
	}
	if n.VNodes <= 0 {
		n.VNodes = DefaultVNodes
	}
	n.ring = NewRing(names, n.VNodes)
	return n, nil
}

// Ring exposes the placement ring (immutable after construction).
func (n *Node) Ring() *Ring { return n.ring }

// Primary names the peer owning job under this node's ring.
func (n *Node) Primary(job string) string { return n.ring.Primary(job) }

// Placement returns the primary plus the R replica followers for job.
func (n *Node) Placement(job string) (primary string, replicas []string) {
	c := n.ring.Candidates(job, 1+n.Replicas)
	if len(c) == 0 {
		return "", nil
	}
	return c[0], c[1:]
}

// Owns reports whether this node is job's primary.
func (n *Node) Owns(job string) bool { return n.Primary(job) == n.Self }

// Follows reports whether this node is in job's replica set.
func (n *Node) Follows(job string) bool {
	_, reps := n.Placement(job)
	for _, r := range reps {
		if r == n.Self {
			return true
		}
	}
	return false
}

// Addr returns a peer's address ("" when unknown).
func (n *Node) Addr(name string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p := n.peers[name]; p != nil {
		return p.Addr
	}
	return ""
}

// MarkContact records the outcome of one direct contact with a peer:
// success resets its ladder to alive and freshens LastSeen, failure climbs
// it toward dead.
func (n *Node) MarkContact(name string, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[name]
	if p == nil || name == n.Self {
		return
	}
	if ok {
		p.misses = 0
		p.dead = false
		p.lastSeen = time.Now()
		return
	}
	p.misses++
	if p.misses >= MissesBeforeDead {
		p.dead = true
	}
}

// State reports the health verdict for one peer (self is always alive).
func (n *Node) State(name string) string {
	if name == n.Self {
		return api.PeerAlive
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if p := n.peers[name]; p != nil {
		return p.state()
	}
	return api.PeerDead
}

// Alive reports whether a peer is currently contactable per this node's
// table. Suspect still counts as usable (one miss can be a blip); only dead
// is excluded. Self is always alive.
func (n *Node) Alive(name string) bool {
	return n.State(name) != api.PeerDead
}

// View renders the health table as wire rows, sorted by name, marking self.
func (n *Node) View() []api.ClusterPeer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]api.ClusterPeer, 0, len(n.peers))
	for _, p := range n.peers {
		row := api.ClusterPeer{Name: p.Name, Addr: p.Addr, State: p.state(), Self: p.Name == n.Self}
		if p.Name == n.Self {
			row.State = api.PeerAlive
		}
		if !p.lastSeen.IsZero() {
			row.LastSeenUnixMs = p.lastSeen.UnixMilli()
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merge folds a gossiped view into the table: rows about peers this node
// knows are merged by freshest LastSeen — a fresher row's state wins, so a
// recovery observed elsewhere propagates without direct contact. Rows about
// self or unknown names are ignored (membership is static).
func (n *Node) Merge(rows []api.ClusterPeer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, row := range rows {
		p := n.peers[row.Name]
		if p == nil || row.Name == n.Self {
			continue
		}
		seen := time.UnixMilli(row.LastSeenUnixMs)
		if row.LastSeenUnixMs == 0 || !seen.After(p.lastSeen) {
			continue
		}
		p.lastSeen = seen
		switch row.State {
		case api.PeerAlive:
			p.misses = 0
			p.dead = false
		case api.PeerSuspect:
			if p.misses == 0 {
				p.misses = 1
			}
			p.dead = false
		case api.PeerDead:
			p.misses = MissesBeforeDead
			p.dead = true
		}
	}
}

// Heard freshens a peer's LastSeen from inbound traffic (a join or gossip
// request from it proves liveness just as well as an outbound success).
func (n *Node) Heard(name string) { n.MarkContact(name, true) }

// Others lists every peer name except self, sorted.
func (n *Node) Others() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers)-1)
	for name := range n.peers {
		if name != n.Self {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
