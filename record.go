package mycroft

import (
	"fmt"
	"io"

	"mycroft/internal/api"
	"mycroft/internal/replay"
	"mycroft/internal/sim"
	"mycroft/internal/trace"
)

// Re-exported replay types, so operators drive post-mortem analysis from the
// root API without importing internal packages.
type (
	// ReplayOptions tunes a Replay: threshold overrides and/or a what-if
	// policy to shadow-match (see internal/replay.Options).
	ReplayOptions = replay.Options
	// ReplayOverrides is the what-if threshold set.
	ReplayOverrides = replay.Overrides
	// ReplayResult is a replay's full outcome: header, recorded vs replayed
	// trigger/report streams, shadow actions.
	ReplayResult = replay.Result
	// ReplayOutcome is one ordered trigger/report stream pair.
	ReplayOutcome = replay.Outcome
	// ReplayDiff reports which triggers/reports/verdicts changed between two
	// outcomes.
	ReplayDiff = replay.DiffReport
	// ArtifactHeader is an incident artifact's self-description.
	ArtifactHeader = replay.Header
)

// Replay re-drives a recorded incident artifact through a fresh analysis
// stack and returns the recorded and replayed outcomes side by side. With
// zero options the replay is faithful and reproduces the original triggers
// and reports byte-for-byte; with overrides or a what-if policy it answers
// "what would Mycroft have concluded if …" against the same evidence.
func Replay(r io.Reader, opts ReplayOptions) (*ReplayResult, error) {
	return replay.Replay(r, opts)
}

// DiffOutcomes compares two outcome streams (recorded vs replayed, or two
// what-if runs) element-wise.
func DiffOutcomes(a, b ReplayOutcome) *ReplayDiff { return replay.Diff(a, b) }

// Recorder streams one hosted job's diagnosis inputs and outputs — ingested
// trace batches, Algorithm 1 evaluation instants, published events — to an
// incident artifact as they happen. Attach before Start for a byte-for-byte
// replayable capture; a recorder attached mid-run carries the store's prior
// records as a preamble, which rebuilds the dependency graph exactly but
// re-derives detection baselines from the preamble's timestamps, so replay
// fidelity is only guaranteed from a start-of-run attach.
//
// The recorder runs inside engine dispatch; a write error (full disk, closed
// pipe) latches in Err and stops the capture rather than failing the run.
type Recorder struct {
	svc          *Service
	h            *JobHandle
	enc          *replay.Encoder
	stream       *Stream
	removeIngest func()
	closed       bool
}

// Record attaches an incident recorder to a hosted job, writing the artifact
// to w incrementally (chunked, no whole-run buffering). One recorder per job
// at a time; Close writes the footer and detaches.
func (s *Service) Record(id JobID, w io.Writer) (*Recorder, error) {
	h, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("mycroft: no job %q", id)
	}
	if h.recorder != nil {
		return nil, fmt.Errorf("mycroft: job %q is already being recorded", id)
	}
	cfg := h.Backend.Config()
	sampled := h.Backend.Sampled()
	hdr := replay.Header{
		Job:       string(id),
		CreatedBy: fmt.Sprintf("mycroft/%d", api.Version),
		Seed:      s.seed,
		WorldSize: h.WorldSize(),
		Topo:      replay.FromTopo(h.Job.Cfg.Topo),
		Backend:   replay.FromBackendConfig(cfg),
		StartNs:   int64(s.Now()),
	}
	for _, r := range sampled {
		hdr.SampledRanks = append(hdr.SampledRanks, int(r))
	}
	enc, err := replay.NewEncoder(w, hdr)
	if err != nil {
		return nil, err
	}
	rec := &Recorder{svc: s, h: h, enc: enc}
	// Preamble: a mid-run attach snapshots the store's current contents as
	// one batch stamped "now", in the global (Time, Rank) merge order — so
	// the replayed graph bootstrap sees exactly what this backend saw.
	if h.Job.DB.Ingested() > 0 {
		var pre []trace.Record
		h.Job.DB.Export(0, s.Eng.Now(), func(r trace.Record) bool {
			pre = append(pre, r)
			return true
		})
		enc.WriteBatch(int64(s.Now()), pre)
	}
	rec.removeIngest = h.Job.DB.AddIngestObserver(func(batch []trace.Record) {
		enc.WriteBatch(int64(s.Now()), batch)
	})
	h.Backend.SetEvalObserver(func(t sim.Time) {
		enc.WriteEval(int64(t))
	})
	// The subscription delivers synchronously inside dispatch, so events
	// land in the artifact in exact engine order relative to the ingest and
	// eval entries around them.
	rec.stream = s.Subscribe(EventFilter{Jobs: []JobID{id}}).Each(func(e Event) {
		enc.WriteEvent(int64(e.At), eventToWire(e))
	})
	h.recorder = rec
	return rec, nil
}

// Job returns the recorded job's id.
func (r *Recorder) Job() JobID { return r.h.ID }

// Sync flushes buffered entries so the bytes written so far decode as a
// valid (incomplete) artifact — the live snapshot the /v1 download serves.
func (r *Recorder) Sync() error { return r.enc.Sync() }

// Err returns the first write error, if any; the capture stopped there.
func (r *Recorder) Err() error { return r.enc.Err() }

// Close detaches the recorder and writes the artifact footer stamped with
// the current virtual time. Idempotent; returns the first write error.
func (r *Recorder) Close() error {
	if r.closed {
		return r.enc.Err()
	}
	r.closed = true
	r.removeIngest()
	r.h.Backend.SetEvalObserver(nil)
	r.stream.Close()
	r.h.recorder = nil
	return r.enc.Close(int64(r.svc.Now()))
}

// Recording returns the job's live recorder, if one is attached.
func (h *JobHandle) Recording() (*Recorder, bool) { return h.recorder, h.recorder != nil }
