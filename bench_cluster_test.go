package mycroft

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mycroft/internal/cluster"
)

// runClusterRouteBench measures job→peer placement on the consistent-hash
// ring — the hot path of every routed client call and every replication
// round. Mirrors internal/cluster's BenchmarkClusterRoute so the emitter
// below can run it from here.
func runClusterRouteBench(b *testing.B) {
	ring := cluster.NewRing([]string{"p1", "p2", "p3", "p4", "p5"}, 0)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ring.Candidates(keys[i%len(keys)], 3); len(got) != 3 {
			b.Fatal("short placement")
		}
	}
}

// benchRow is one benchmark's result in BENCH_cluster.json.
type benchRow struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// TestEmitClusterBench regenerates BENCH_cluster.json, the committed
// perf-trajectory artifact for the cluster subsystem. Guarded by env so a
// plain `go test` stays fast and deterministic:
//
//	MYCROFT_BENCH_OUT=BENCH_cluster.json go test -run TestEmitClusterBench .
func TestEmitClusterBench(t *testing.T) {
	out := os.Getenv("MYCROFT_BENCH_OUT")
	if out == "" {
		t.Skip("set MYCROFT_BENCH_OUT to (re)write BENCH_cluster.json")
	}
	rows := []benchRow{
		toRow("BenchmarkClusterRoute", testing.Benchmark(runClusterRouteBench)),
		toRow("BenchmarkReplicationLag", testing.Benchmark(runReplicationLagBench)),
	}
	data, err := json.MarshalIndent(struct {
		Benchmarks []benchRow `json:"benchmarks"`
	}{rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func toRow(name string, r testing.BenchmarkResult) benchRow {
	row := benchRow{
		Name: name, Iterations: r.N, NsPerOp: r.NsPerOp(),
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		row.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			row.Extra[k] = v
		}
	}
	return row
}
