package mycroft

import (
	"fmt"
	"slices"
	"time"

	"mycroft/internal/core"
)

// EventKind discriminates service events.
type EventKind = core.EventKind

const (
	// EventTrigger carries an Algorithm 1 firing.
	EventTrigger = core.EventTrigger
	// EventReport carries an Algorithm 2 root-cause verdict.
	EventReport = core.EventReport
	// EventLifecycle marks a job or backend state change (Phase names it).
	EventLifecycle = core.EventLifecycle
	// EventAction carries a remediation-loop transition: an attempt was
	// applied, succeeded, failed or escalated (Event.Action snapshots the
	// audit-log entry at that moment).
	EventAction = core.EventAction
)

// Lifecycle phases a Service publishes. Backend phases re-export the core
// package's constants.
const (
	PhaseJobStarted     = "job-started"
	PhaseJobStopped     = "job-stopped"
	PhaseBackendStarted = core.PhaseBackendStarted
	PhaseBackendStopped = core.PhaseBackendStopped
)

// Event is one observation delivered to a subscription: which hosted job it
// came from, when (virtual time), and exactly one of Trigger, Report or
// Phase matching Kind.
type Event struct {
	Job  JobID
	Kind EventKind
	At   time.Duration

	Trigger *Trigger       // EventTrigger
	Report  *Report        // EventReport
	Phase   string         // EventLifecycle
	Action  *RemedyAttempt // EventAction
}

func (e Event) String() string {
	switch e.Kind {
	case EventTrigger:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Trigger)
	case EventReport:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Report)
	case EventLifecycle:
		return fmt.Sprintf("job %s: [%v] %s", e.Job, e.At, e.Phase)
	case EventAction:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Action)
	default:
		return fmt.Sprintf("job %s: %v", e.Job, e.Kind)
	}
}

// EventFilter selects which events a subscription receives. Zero-value
// fields match everything; set fields are ANDed together.
type EventFilter struct {
	// Jobs restricts to these hosted jobs.
	Jobs []JobID
	// Kinds restricts event kinds.
	Kinds []EventKind
	// Ranks restricts to events about these ranks: a trigger's sampled rank
	// or a report's suspect. Lifecycle events carry no rank and are
	// filtered out when Ranks is set.
	Ranks []Rank
	// Categories restricts to reports with one of these verdicts; setting
	// it implies reports-only.
	Categories []Category
	// Victims restricts to reports whose blast radius — the suspect plus
	// Report.Victims — includes one of these ranks; setting it implies
	// reports-only. Use it to watch "anything that takes rank N down with
	// it", which Ranks (suspect-only) cannot express.
	Victims []Rank
	// MinChain restricts to reports whose causal chain has at least this
	// many hops; setting it > 0 implies reports-only. MinChain 2 selects
	// exactly the cross-communicator cascades.
	MinChain int
	// Outcomes restricts to remediation events whose attempt carries one of
	// these outcomes; setting it implies actions-only. Watch
	// {RemedyEscalated} to page exactly when the loop gives up.
	Outcomes []RemedyOutcome
	// From and To bound the event's virtual time, inclusive. To 0 means
	// unbounded.
	From, To time.Duration
	// Buffer caps how many undelivered events the stream may hold in poll
	// mode (0 = unbounded). When full, the oldest buffered event is dropped
	// to admit the new one and Stream.Dropped counts it — a slow subscriber
	// degrades to "most recent Buffer events" instead of growing memory
	// without bound.
	Buffer int
}

func (f EventFilter) matches(e Event) bool {
	if len(f.Jobs) > 0 && !slices.Contains(f.Jobs, e.Job) {
		return false
	}
	if len(f.Kinds) > 0 && !slices.Contains(f.Kinds, e.Kind) {
		return false
	}
	if len(f.Ranks) > 0 {
		var r Rank
		switch {
		case e.Trigger != nil:
			r = e.Trigger.Rank
		case e.Report != nil:
			r = e.Report.Suspect
		case e.Action != nil:
			r = e.Action.Action.Rank
		default:
			return false
		}
		if !slices.Contains(f.Ranks, r) {
			return false
		}
	}
	if len(f.Categories) > 0 {
		if e.Report == nil || !slices.Contains(f.Categories, e.Report.Category) {
			return false
		}
	}
	if len(f.Victims) > 0 {
		if e.Report == nil {
			return false
		}
		hit := slices.Contains(f.Victims, e.Report.Suspect)
		for _, v := range f.Victims {
			hit = hit || slices.Contains(e.Report.Victims, v)
		}
		if !hit {
			return false
		}
	}
	if f.MinChain > 0 {
		if e.Report == nil || len(e.Report.Chain) < f.MinChain {
			return false
		}
	}
	if len(f.Outcomes) > 0 {
		if e.Action == nil || !slices.Contains(f.Outcomes, e.Action.Outcome) {
			return false
		}
	}
	if e.At < f.From {
		return false
	}
	if f.To > 0 && e.At > f.To {
		return false
	}
	return true
}

// Stream is one live subscription. Events matching the filter are buffered
// as the simulation produces them; consume them by polling (Next, Drain) or
// push-style by installing a handler with Each. The engine is
// single-threaded, so delivery is synchronous and deterministic.
type Stream struct {
	svc     *Service
	filter  EventFilter
	fn      func(Event)
	buf     []Event
	dropped uint64
	closed  bool
}

// Subscribe attaches a typed subscription to the service. Close the stream
// to detach it.
func (s *Service) Subscribe(f EventFilter) *Stream {
	st := &Stream{svc: s, filter: f}
	s.streams = append(s.streams, st)
	return st
}

func (st *Stream) deliver(e Event) {
	if st.fn != nil {
		st.fn(e)
		return
	}
	if b := st.filter.Buffer; b > 0 && len(st.buf) >= b {
		// Keep the newest events: age out the front of the buffer.
		over := len(st.buf) - b + 1
		st.buf = st.buf[over:]
		st.dropped += uint64(over)
	}
	st.buf = append(st.buf, e)
}

// Each installs a push handler: already-buffered events are flushed through
// it immediately, then every future match is delivered as it happens. It
// returns the stream for chaining.
func (st *Stream) Each(fn func(Event)) *Stream {
	for _, e := range st.buf {
		fn(e)
	}
	st.buf = nil
	st.fn = fn
	return st
}

// Next pops the oldest buffered event.
func (st *Stream) Next() (Event, bool) {
	if len(st.buf) == 0 {
		return Event{}, false
	}
	e := st.buf[0]
	st.buf = st.buf[1:]
	return e, true
}

// Drain returns and clears every buffered event.
func (st *Stream) Drain() []Event {
	out := st.buf
	st.buf = nil
	return out
}

// Len reports how many events are buffered.
func (st *Stream) Len() int { return len(st.buf) }

// Dropped reports how many matched events were aged out of a full buffer
// (always 0 without an EventFilter.Buffer cap or with a push handler).
func (st *Stream) Dropped() uint64 { return st.dropped }

// Close detaches the subscription from the service; buffered events remain
// consumable.
func (st *Stream) Close() {
	st.closed = true
	if st.svc == nil {
		return
	}
	st.svc.streams = slices.DeleteFunc(st.svc.streams, func(x *Stream) bool { return x == st })
	st.svc = nil
}
