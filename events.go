package mycroft

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"mycroft/internal/core"
)

// EventKind discriminates service events.
type EventKind = core.EventKind

const (
	// EventTrigger carries an Algorithm 1 firing.
	EventTrigger = core.EventTrigger
	// EventReport carries an Algorithm 2 root-cause verdict.
	EventReport = core.EventReport
	// EventLifecycle marks a job or backend state change (Phase names it).
	EventLifecycle = core.EventLifecycle
	// EventAction carries a remediation-loop transition: an attempt was
	// applied, succeeded, failed or escalated (Event.Action snapshots the
	// audit-log entry at that moment).
	EventAction = core.EventAction
	// EventHealth carries a job health transition from the heartbeat monitor
	// (Event.Health names the states and why the job moved).
	EventHealth = core.EventHealth
	// EventLogAnomaly carries a non-tracepoint channel finding — a log-template
	// divergence or a timing-envelope breach — as it is detected, before (and
	// whether or not) it escalates into a report (Event.LogAnomaly).
	EventLogAnomaly = core.EventLogAnomaly
)

// Lifecycle phases a Service publishes. Backend phases re-export the core
// package's constants.
const (
	PhaseJobStarted     = "job-started"
	PhaseJobStopped     = "job-stopped"
	PhaseBackendStarted = core.PhaseBackendStarted
	PhaseBackendStopped = core.PhaseBackendStopped
	// PhaseServerShutdown is the terminal lifecycle event a draining daemon
	// delivers to every live subscription (Server.AnnounceShutdown), so
	// clients can tell a clean shutdown from a crash.
	PhaseServerShutdown = "server-shutdown"
)

// Event is one observation delivered to a subscription: which hosted job it
// came from, when (virtual time), and exactly one of Trigger, Report or
// Phase matching Kind.
type Event struct {
	Job  JobID
	Kind EventKind
	At   time.Duration

	Trigger    *Trigger        // EventTrigger
	Report     *Report         // EventReport
	Phase      string          // EventLifecycle
	Action     *RemedyAttempt  // EventAction
	Health     *HealthChange   // EventHealth
	LogAnomaly *ChannelAnomaly // EventLogAnomaly
}

func (e Event) String() string {
	switch e.Kind {
	case EventTrigger:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Trigger)
	case EventReport:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Report)
	case EventLifecycle:
		return fmt.Sprintf("job %s: [%v] %s", e.Job, e.At, e.Phase)
	case EventAction:
		return fmt.Sprintf("job %s: %v", e.Job, *e.Action)
	case EventHealth:
		return fmt.Sprintf("job %s: [%v] health %v", e.Job, e.At, *e.Health)
	case EventLogAnomaly:
		return fmt.Sprintf("job %s: %v", e.Job, *e.LogAnomaly)
	default:
		return fmt.Sprintf("job %s: %v", e.Job, e.Kind)
	}
}

// EventFilter selects which events a subscription receives. Zero-value
// fields match everything; set fields are ANDed together.
type EventFilter struct {
	// Jobs restricts to these hosted jobs.
	Jobs []JobID
	// Kinds restricts event kinds.
	Kinds []EventKind
	// Ranks restricts to events about these ranks: a trigger's sampled rank
	// or a report's suspect. Lifecycle events carry no rank and are
	// filtered out when Ranks is set.
	Ranks []Rank
	// Categories restricts to reports with one of these verdicts; setting
	// it implies reports-only.
	Categories []Category
	// Victims restricts to reports whose blast radius — the suspect plus
	// Report.Victims — includes one of these ranks; setting it implies
	// reports-only. Use it to watch "anything that takes rank N down with
	// it", which Ranks (suspect-only) cannot express.
	Victims []Rank
	// MinChain restricts to reports whose causal chain has at least this
	// many hops; setting it > 0 implies reports-only. MinChain 2 selects
	// exactly the cross-communicator cascades.
	MinChain int
	// Outcomes restricts to remediation events whose attempt carries one of
	// these outcomes; setting it implies actions-only. Watch
	// {RemedyEscalated} to page exactly when the loop gives up.
	Outcomes []RemedyOutcome
	// From and To bound the event's virtual time, inclusive. To 0 means
	// unbounded.
	From, To time.Duration
	// Buffer caps how many undelivered events the stream may hold in poll
	// mode (0 = unbounded). When full, the oldest buffered event is dropped
	// to admit the new one and Stream.Dropped counts it — a slow subscriber
	// degrades to "most recent Buffer events" instead of growing memory
	// without bound.
	Buffer int
}

func (f EventFilter) matches(e Event) bool {
	if len(f.Jobs) > 0 && !slices.Contains(f.Jobs, e.Job) {
		return false
	}
	if len(f.Kinds) > 0 && !slices.Contains(f.Kinds, e.Kind) {
		return false
	}
	if len(f.Ranks) > 0 {
		var r Rank
		switch {
		case e.Trigger != nil:
			r = e.Trigger.Rank
		case e.Report != nil:
			r = e.Report.Suspect
		case e.Action != nil:
			r = e.Action.Action.Rank
		case e.LogAnomaly != nil:
			r = e.LogAnomaly.Rank
		default:
			return false
		}
		if !slices.Contains(f.Ranks, r) {
			return false
		}
	}
	if len(f.Categories) > 0 {
		if e.Report == nil || !slices.Contains(f.Categories, e.Report.Category) {
			return false
		}
	}
	if len(f.Victims) > 0 {
		if e.Report == nil {
			return false
		}
		hit := slices.Contains(f.Victims, e.Report.Suspect)
		for _, v := range f.Victims {
			hit = hit || slices.Contains(e.Report.Victims, v)
		}
		if !hit {
			return false
		}
	}
	if f.MinChain > 0 {
		if e.Report == nil || len(e.Report.Chain) < f.MinChain {
			return false
		}
	}
	if len(f.Outcomes) > 0 {
		if e.Action == nil || !slices.Contains(f.Outcomes, e.Action.Outcome) {
			return false
		}
	}
	if e.At < f.From {
		return false
	}
	if f.To > 0 && e.At > f.To {
		return false
	}
	return true
}

// Stream is one live subscription: the streaming cursor both halves of the
// Client interface hand out. Events matching the filter are buffered as they
// are produced; consume them by polling (Next, NextWait, Drain) or
// push-style by installing a handler with Each.
//
// For an in-process Service the engine is single-threaded, so delivery is
// synchronous and deterministic. A Stream is nonetheless safe to consume
// from another goroutine: a daemon's long-poll handlers block in NextWait
// while the drive loop delivers, and a RemoteClient's transport feeds the
// stream from its poller goroutine.
type Stream struct {
	svc    *Service
	filter EventFilter

	mu            sync.Mutex
	fn            func(Event)
	buf           []Event
	dropped       uint64 // locally aged out of a full buffer
	remoteDropped uint64 // reported dropped by a remote server
	closed        bool
	err           error
	waiters       int           // NextWait calls currently parked
	wake          chan struct{} // closed to broadcast a delivery or Close
	onClose       func()        // transport hook (remote unsubscribe)
}

func newStream(svc *Service, f EventFilter) *Stream {
	return &Stream{svc: svc, filter: f, wake: make(chan struct{})}
}

// Subscribe attaches a typed subscription to the service. Close the stream
// to detach it.
func (s *Service) Subscribe(f EventFilter) *Stream {
	st := newStream(s, f)
	s.streamsMu.Lock()
	s.streams = append(s.streams, st)
	s.streamsMu.Unlock()
	return st
}

func (st *Stream) deliver(e Event) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	// st.svc is stable while the stream is open and st.mu is held (Close
	// flips closed under this mutex before detaching); remote streams have
	// no service and count drops via the server's report instead.
	svc := st.svc
	if fn := st.fn; fn != nil {
		if svc != nil {
			svc.subDelivered.Inc()
		}
		st.mu.Unlock()
		fn(e)
		return
	}
	if b := st.filter.Buffer; b > 0 && len(st.buf) >= b {
		// Keep the newest events: age out the front of the buffer.
		over := len(st.buf) - b + 1
		st.buf = st.buf[over:]
		st.dropped += uint64(over)
		if svc != nil {
			svc.subDropped.Add(uint64(over))
		}
	}
	st.buf = append(st.buf, e)
	if svc != nil {
		svc.subDelivered.Inc()
	}
	st.broadcastLocked()
	st.mu.Unlock()
}

// broadcastLocked wakes every parked NextWait by closing the current wake
// channel and arming a fresh one. With no waiters it is a no-op, so the
// common single-threaded consumer pays no per-event channel churn. Callers
// hold st.mu.
func (st *Stream) broadcastLocked() {
	if st.waiters == 0 {
		return
	}
	close(st.wake)
	st.wake = make(chan struct{})
}

// Each installs a push handler: already-buffered events are flushed through
// it immediately, then every future match is delivered as it happens. It
// returns the stream for chaining. On a remote stream the handler runs on
// the transport's poller goroutine. Events delivered while the backlog
// flushes keep their order: they land in the buffer and flush behind it,
// and the handler is only installed once the buffer is empty.
func (st *Stream) Each(fn func(Event)) *Stream {
	for {
		st.mu.Lock()
		if len(st.buf) == 0 {
			st.fn = fn
			st.mu.Unlock()
			return st
		}
		buffered := st.buf
		st.buf = nil
		st.mu.Unlock()
		for _, e := range buffered {
			fn(e)
		}
	}
}

// Next pops the oldest buffered event without waiting.
func (st *Stream) Next() (Event, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pop()
}

// pop removes the head of the buffer. Callers hold st.mu.
func (st *Stream) pop() (Event, bool) {
	if len(st.buf) == 0 {
		return Event{}, false
	}
	e := st.buf[0]
	st.buf = st.buf[1:]
	return e, true
}

// NextWait pops the oldest buffered event, waiting up to d (wall time) for
// one to be delivered when the buffer is empty. It returns false when the
// wait expires or the stream is closed with nothing buffered — the
// bounded-wait primitive a long-poll handler parks on instead of busy-
// spinning Next. Waiting only helps when another goroutine is driving the
// service (a daemon's drive loop, a remote poller); in single-threaded use
// an empty stream stays empty for the full wait.
func (st *Stream) NextWait(d time.Duration) (Event, bool) {
	deadline := time.Now().Add(d)
	for {
		st.mu.Lock()
		if e, ok := st.pop(); ok {
			st.mu.Unlock()
			return e, true
		}
		if st.closed {
			st.mu.Unlock()
			return Event{}, false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			st.mu.Unlock()
			return Event{}, false
		}
		st.waiters++
		wake := st.wake
		st.mu.Unlock()
		timer := time.NewTimer(remain)
		select {
		case <-wake:
		case <-timer.C:
		}
		timer.Stop()
		st.mu.Lock()
		st.waiters--
		st.mu.Unlock()
	}
}

// Drain returns and clears every buffered event.
func (st *Stream) Drain() []Event {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.buf
	st.buf = nil
	return out
}

// Len reports how many events are buffered.
func (st *Stream) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// Dropped reports how many matched events were lost to a full buffer: aged
// out locally (EventFilter.Buffer) plus, on a remote stream, drops the
// server reported for the subscription.
func (st *Stream) Dropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped + st.remoteDropped
}

// setRemoteDropped records the server-side cumulative drop count.
func (st *Stream) setRemoteDropped(n uint64) {
	st.mu.Lock()
	st.remoteDropped = n
	st.mu.Unlock()
}

// addDropped counts events known lost before delivery — the cluster client
// calls it with the exact seq gaps its tails observe across a failover.
func (st *Stream) addDropped(n uint64) {
	if n == 0 {
		return
	}
	st.mu.Lock()
	st.dropped += n
	st.mu.Unlock()
}

// Err reports why the stream stopped, when it stopped abnormally: a remote
// transport failure, or a wire payload that would not parse. A cleanly
// closed or still-live stream returns nil.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// fail records a transport error and closes the stream.
func (st *Stream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.Close()
}

// isClosed reports whether Close has run.
func (st *Stream) isClosed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed
}

// Close detaches the subscription; buffered events remain consumable and
// waiting NextWait calls return. Close is idempotent and always returns nil.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	onClose := st.onClose
	st.onClose = nil
	st.broadcastLocked()
	st.mu.Unlock()
	if st.svc != nil {
		st.svc.streamsMu.Lock()
		st.svc.streams = slices.DeleteFunc(st.svc.streams, func(x *Stream) bool { return x == st })
		st.svc.streamsMu.Unlock()
		st.svc = nil
	}
	if onClose != nil {
		onClose()
	}
	return nil
}
