package mycroft

import (
	"time"

	"mycroft/internal/clouddb"
)

// Client is the transport-agnostic face of a Mycroft deployment: the one
// method set every consumer — CLI, scenario runner, dashboard — programs
// against, whether the engine runs in-process (*Service) or behind a
// mycroft-serve daemon (*RemoteClient, via Dial).
//
// Queries return explicit pagination (Total plus a cursor or NextOffset),
// and Subscribe hands back a *Stream: the streaming cursor. On a remote
// client the stream is fed by the daemon's long-poll endpoint; transport
// failures close it and surface through Stream.Err.
type Client interface {
	// ListJobs describes every hosted job and the service's virtual clock.
	ListJobs() (JobsResult, error)
	// QueryTrace pages raw Coll-level records out of a job's sharded store.
	QueryTrace(TraceQuery) (TraceResult, error)
	// QueryTriggers pages Algorithm 1 firings across hosted jobs.
	QueryTriggers(TriggerQuery) (TriggerResult, error)
	// QueryReports pages Algorithm 2 verdicts across hosted jobs.
	QueryReports(ReportQuery) (ReportResult, error)
	// QueryDependencies reads a job's live dependency-graph wait edges.
	QueryDependencies(DependencyQuery) (DependencyResult, error)
	// BlastRadius lists the ranks transitively blocked by a suspect.
	BlastRadius(job JobID, suspect Rank) ([]Rank, error)
	// QueryRemediations pages the remediation audit log across hosted jobs.
	QueryRemediations(RemediationQuery) (RemediationResult, error)
	// QuerySpans reads a job's pipeline span ring: per-incident latency
	// attribution from ingest to remediation.
	QuerySpans(SpanQuery) (SpanResult, error)
	// Triage runs the Fig. 6 integration pipeline over a job's latest report.
	Triage(job JobID) (TriageResult, error)
	// Health reports per-job heartbeat state and subscription fan-out.
	Health() (HealthResult, error)
	// IngestLogs feeds structured training-log lines into a job's log
	// diagnosis channel (the tracepoint-free ingest path).
	IngestLogs(job JobID, lines []LogLine) (IngestResult, error)
	// IngestTimings feeds per-rank iteration timestamps into a job's
	// black-box perf channel.
	IngestTimings(job JobID, samples []IterationSample) (IngestResult, error)
	// ChannelStats reports a job's per-channel diagnosis counters and fusion
	// summary.
	ChannelStats(job JobID) (ChannelStatsResult, error)
	// Subscribe attaches a typed event subscription as a streaming cursor.
	Subscribe(EventFilter) *Stream
}

// Both transports satisfy the one Client contract.
var (
	_ Client = (*Service)(nil)
	_ Client = (*RemoteClient)(nil)
)

// JobInfo describes one hosted job: identity, size, progress, store
// occupancy and remediation state.
type JobInfo struct {
	ID         JobID
	WorldSize  int
	Iterations int
	// Records is how many trace records reached the job's store.
	Records uint64
	// Store is the sharded trace-store occupancy (see JobHandle.StoreStats).
	Store clouddb.Stats
	// Isolated lists ranks the remediation loop has cordoned.
	Isolated []Rank
	// Policy names the attached remediation policy ("" when none).
	Policy string
	// Source marks a row not hosted by the answering daemon: "replica" when
	// it came from a cluster peer's replicated snapshot ("" = live local).
	Source string
}

// JobsResult is the job listing plus the service's current virtual time.
type JobsResult struct {
	Now  time.Duration
	Jobs []JobInfo
}

// ListJobs describes every hosted job in arrival order.
func (s *Service) ListJobs() (JobsResult, error) {
	res := JobsResult{Now: s.Now(), Jobs: make([]JobInfo, 0, len(s.order))}
	for _, id := range s.order {
		h := s.jobs[id]
		info := JobInfo{
			ID: id, WorldSize: h.WorldSize(), Iterations: h.Job.IterationsDone(),
			Records: h.RecordsIngested(), Store: h.StoreStats(), Isolated: h.Isolated(),
		}
		if h.remedy != nil {
			info.Policy = h.remedy.Policy().Name
		}
		res.Jobs = append(res.Jobs, info)
	}
	return res, nil
}

// TriageResult is the combined py-spy / Flight Recorder / Mycroft verdict
// for a job's latest report. OK is false when the job has no reports yet.
type TriageResult struct {
	Job     JobID
	Source  string
	Rank    Rank
	Summary string
	OK      bool
}

// Triage runs the Fig. 6 integration pipeline over one hosted job. An empty
// job id is allowed only when the service hosts exactly one job.
func (s *Service) Triage(job JobID) (TriageResult, error) {
	h, err := s.resolveJob(job)
	if err != nil {
		return TriageResult{}, err
	}
	source, rank, summary, ok := h.Triage()
	return TriageResult{Job: h.ID, Source: source, Rank: rank, Summary: summary, OK: ok}, nil
}
