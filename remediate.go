package mycroft

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
	"mycroft/internal/topo"
)

// Remediation types, re-exported so downstream users need only this package.
type (
	// RemedyPolicy maps report shapes to mitigation actions (first matching
	// rule wins).
	RemedyPolicy = remedy.Policy
	// RemedyRule is one policy entry: match conditions, action, retry budget.
	RemedyRule = remedy.Rule
	// RemedyActionKind enumerates the mitigations a rule can order.
	RemedyActionKind = remedy.ActionKind
	// RemedyAttempt is one audit-log entry: a detect→act→verify cycle.
	RemedyAttempt = remedy.Attempt
	// RemedyOutcome is the audited fate of an attempt.
	RemedyOutcome = remedy.Outcome
)

// Remediation actions.
const (
	RemedyRecoverFault = remedy.ActRecoverFault
	RemedyIsolateRank  = remedy.ActIsolateRank
	RemedyRebuildComm  = remedy.ActRebuildComm
	RemedyRestartJob   = remedy.ActRestartJob
	RemedyEscalate     = remedy.ActEscalate
)

// Remediation outcomes.
const (
	RemedyPending   = remedy.OutcomePending
	RemedySucceeded = remedy.OutcomeSucceeded
	RemedyFailed    = remedy.OutcomeFailed
	RemedyEscalated = remedy.OutcomeEscalated
)

// DefaultRemedyPolicy is a sane starting policy: recover what the substrate
// can undo in place, replace straggling hardware, and page for everything
// the CCL cannot see into. Budgets take the remedy package defaults, sized
// for the default 30 s backend re-arm delay.
func DefaultRemedyPolicy() RemedyPolicy {
	p := SelfHealPolicy()
	p.Name = "default"
	for i := range p.Rules {
		p.Rules[i].MaxAttempts, p.Rules[i].Backoff, p.Rules[i].VerifyWindow = 0, 0, 0
	}
	p.Rules = append(p.Rules, RemedyRule{Name: "page", Action: RemedyEscalate})
	return p
}

// SelfHealPolicy is the tuned self-healing rule set the builtin scenarios,
// the mycroft-trace remedy CLI and BenchmarkRemediationLoop all share:
// in-place recovery and straggler isolation with tight budgets, sized for a
// job whose BackendConfig.RearmDelay is lowered to ~10 s (scenario knob
// fleet.rearm) so a failed mitigation is re-detected inside the 15 s verify
// window.
func SelfHealPolicy() RemedyPolicy {
	return RemedyPolicy{Name: "self-heal", Rules: []RemedyRule{
		{
			Name:       "recover",
			Categories: []Category{CatNetworkSendPath, CatNetworkDegrade, CatGPUHang, CatPCIeDegrade},
			Action:     RemedyRecoverFault, MaxAttempts: 3,
			Backoff: 5 * time.Second, VerifyWindow: 15 * time.Second,
		},
		{
			Name:       "replace-straggler",
			Categories: []Category{CatComputeStraggler},
			Action:     RemedyIsolateRank, MaxAttempts: 2,
			Backoff: 5 * time.Second, VerifyWindow: 15 * time.Second,
		},
	}}
}

// AttachPolicy arms closed-loop remediation for one hosted job: every
// subsequent verdict is matched against the policy, matched actions are
// executed against the live job, each attempt is verified by a quiet window
// and audited. Attempt transitions are published as EventAction events.
// A job holds at most one policy; attaching a second is an error.
func (s *Service) AttachPolicy(job JobID, p RemedyPolicy) error {
	h, err := s.resolveJob(job)
	if err != nil {
		return err
	}
	if h.remedy != nil {
		return fmt.Errorf("mycroft: job %q already has policy %q attached", h.ID, h.remedy.Policy().Name)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	h.remedy = remedy.New(s.Eng, p, h.applyRemedy, func(a RemedyAttempt) {
		s.observeRemedyMetrics(h.ID, a)
		s.dispatch(Event{Job: h.ID, Kind: EventAction, At: s.Now(), Action: &a})
	})
	h.remedy.SetTracer(h.tracer)
	return nil
}

// observeRemedy feeds backend events into the job's remediation loop (the
// dispatch hook; a no-op for jobs without a policy).
func (h *JobHandle) observeRemedy(e Event) {
	if h.remedy == nil {
		return
	}
	switch e.Kind {
	case EventTrigger:
		h.remedy.ObserveTrigger(*e.Trigger)
	case EventReport:
		h.remedy.ObserveReport(*e.Report)
	}
}

// RemediationLog returns the job's audit log: every detect→act→verify
// attempt so far, in attempt order (empty without an attached policy).
func (h *JobHandle) RemediationLog() []RemedyAttempt {
	if h.remedy == nil {
		return nil
	}
	return h.remedy.Log()
}

// Isolated lists ranks the remediation loop has cordoned, in isolation
// order.
func (h *JobHandle) Isolated() []Rank { return append([]Rank(nil), h.isolated...) }

// applyRemedy is the remedy.Applier: it carries one ordered mitigation out
// against the simulated substrate.
func (h *JobHandle) applyRemedy(a remedy.Action) error {
	switch a.Kind {
	case remedy.ActRecoverFault:
		k, ok := recoverKindFor(a.Category)
		if !ok {
			return fmt.Errorf("category %s has no in-place recovery", a.Category)
		}
		faults.Recover(h.Job, faults.Spec{Kind: k, Rank: a.Rank})
	case remedy.ActIsolateRank:
		h.resetRank(a.Rank)
		if !slices.Contains(h.isolated, a.Rank) {
			h.isolated = append(h.isolated, a.Rank)
		}
	case remedy.ActRebuildComm:
		comm := h.Job.CommOf(a.Comm)
		if comm == nil {
			return fmt.Errorf("no communicator %d", a.Comm)
		}
		for _, r := range comm.Ranks() {
			h.resetRank(r)
		}
	case remedy.ActRestartJob:
		for r := 0; r < h.WorldSize(); r++ {
			h.resetRank(Rank(r))
		}
	case remedy.ActEscalate:
		// Bookkeeping only: the audit log (and any EventAction subscriber)
		// is the page.
	default:
		return fmt.Errorf("unknown action %q", a.Kind)
	}
	return nil
}

// resetRank models swapping the rank onto healthy hardware: every injected
// NIC/GPU degradation is cleared.
func (h *JobHandle) resetRank(r Rank) {
	if int(r) < 0 || int(r) >= h.WorldSize() {
		return
	}
	nic := h.Job.NICs[r]
	nic.SetDown(false)
	nic.SetWireLoss(false)
	nic.SetBandwidthScale(1)
	gpu := h.Job.GPUs[r]
	gpu.SetHang(false)
	gpu.SetSlowFactor(1)
	gpu.SetCopyBandwidthScale(1)
}

// recoverKindFor maps an RCA category to the recoverable fault kind whose
// undo mitigates it. Categories rooted outside the CCL (proxy crash,
// op-not-launched, unknown) have no in-place recovery.
func recoverKindFor(c Category) (faults.Kind, bool) {
	switch c {
	case core.CatNetworkSendPath:
		return faults.NICDown, true
	case core.CatNetworkDegrade:
		return faults.NICDegrade, true
	case core.CatGPUHang:
		return faults.GPUHang, true
	case core.CatPCIeDegrade:
		return faults.PCIeDegrade, true
	case core.CatComputeStraggler:
		return faults.GPUSlow, true
	}
	return "", false
}

// RemediationQuery asks for audit-log attempts across hosted jobs.
type RemediationQuery struct {
	// Jobs restricts to these hosted jobs (nil = all).
	Jobs []JobID
	// Ranks restricts to attempts acting on these ranks.
	Ranks []Rank
	// Actions restricts to these mitigation kinds.
	Actions []RemedyActionKind
	// Outcomes restricts to these audited fates.
	Outcomes []RemedyOutcome
	// From and To bound the attempt's report time, inclusive. To 0 means
	// unbounded.
	From, To time.Duration
	// Offset and Limit paginate the matched set (Limit 0 = everything).
	Offset, Limit int
}

// JobRemediation is an audit-log attempt tagged with its job.
type JobRemediation struct {
	Job JobID
	RemedyAttempt
}

// RemediationResult is one page of matches, ordered by report time (job
// arrival order breaks ties). Total counts all matches before pagination;
// NextOffset is -1 when this page exhausted them.
type RemediationResult struct {
	Attempts   []JobRemediation
	Total      int
	NextOffset int
}

// QueryRemediations answers a RemediationQuery across the selected jobs.
func (s *Service) QueryRemediations(q RemediationQuery) (RemediationResult, error) {
	hs, err := s.selectJobs(q.Jobs)
	if err != nil {
		return RemediationResult{}, err
	}
	var all []JobRemediation
	for _, h := range hs {
		for _, a := range h.RemediationLog() {
			if len(q.Ranks) > 0 && !slices.Contains(q.Ranks, topo.Rank(a.Action.Rank)) {
				continue
			}
			if len(q.Actions) > 0 && !slices.Contains(q.Actions, a.Action.Kind) {
				continue
			}
			if len(q.Outcomes) > 0 && !slices.Contains(q.Outcomes, a.Outcome) {
				continue
			}
			if !inWindow(time.Duration(a.ReportedAt), q.From, q.To) {
				continue
			}
			all = append(all, JobRemediation{Job: h.ID, RemedyAttempt: a})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ReportedAt < all[j].ReportedAt })
	total := len(all)
	page := paginate(all, q.Offset, q.Limit)
	return RemediationResult{Attempts: page, Total: total, NextOffset: nextOffset(q.Offset, len(page), total)}, nil
}
