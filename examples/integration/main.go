// Integration: the Fig. 6 triage pipeline. Three failure modes, three
// different reliability systems naming the root cause:
//
//   - a dataloader stall   → py-spy stack grid (the stuck rank's Python
//     stack stands out)
//
//   - a skipped collective → Flight Recorder ring analysis (the rank that
//     launched op k+1 without ever launching op k)
//
//   - a NIC failure        → Mycroft's Coll-level dependency analysis
//
//     go run ./examples/integration
package main

import (
	"fmt"
	"time"

	"mycroft"
	"mycroft/internal/pystack"
)

func scenario(name string, kind mycroft.FaultKind, rank mycroft.Rank, seed int64) {
	fmt.Printf("=== %s (fault at rank %d) ===\n", name, rank)
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: seed})
	job := svc.MustAddJob("triage", mycroft.JobOptions{})
	svc.Start()
	job.Inject(mycroft.Fault{Kind: kind, Rank: rank, At: 15 * time.Second})
	svc.Run(55 * time.Second)

	if kind == mycroft.DataloaderStall {
		// Show the colored stack grid the operator would see.
		a := pystack.Analyze(job.Job.PyStack.Dump())
		fmt.Println(a.Grid(4))
	}
	if source, suspect, summary, ok := job.Triage(); ok {
		fmt.Printf("resolved by %-15s → rank %d\n  %s\n\n", source, suspect, summary)
	} else {
		fmt.Print("no verdict\n\n")
	}
}

func main() {
	scenario("dataloader stall", mycroft.DataloaderStall, 2, 1)
	scenario("synchronization bug (skipped collective)", mycroft.SyncMismatch, 3, 2)
	scenario("NIC failure inside the CCL", mycroft.NICDown, 5, 3)
}
