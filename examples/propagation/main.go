// Propagation: watch a single NIC failure cascade through a 64-rank ring
// all-reduce (§4.1). The output is a timeline of how many ranks are still
// making pipeline progress after the fault — the cluster-wide stall arrives
// within hundreds of virtual milliseconds, which is why sampling a handful
// of ranks suffices for detection.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/gpusim"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func main() {
	const world = 64
	eng := sim.NewEngine(1)
	infos := make([]ccl.RankInfo, world)
	nics := make([]*rdma.NIC, world)
	for r := 0; r < world; r++ {
		nics[r] = rdma.NewNIC(eng, rdma.NICID(r), fmt.Sprintf("nic%d", r), rdma.DefaultNIC())
		infos[r] = ccl.RankInfo{
			Rank: topo.Rank(r), IP: topo.IP(fmt.Sprintf("10.0.0.%d", r)), Node: topo.NodeID(r),
			GPU: gpusim.New(eng, gpusim.ID(r), gpusim.DefaultGPU()),
			NIC: nics[r],
		}
	}
	comm := ccl.NewCommunicator(eng, 1, infos, ccl.Config{Channels: 1})
	defer comm.Close()

	op := comm.AllReduce(world*64<<20, nil)
	faultRank := world / 3
	faultAt := sim.Time(5 * time.Millisecond)
	eng.At(faultAt, func() {
		fmt.Printf("[%8v] NIC of rank %d goes down\n", faultAt, faultRank)
		nics[faultRank].SetDown(true)
	})

	// Sample the cascade every 20 ms of virtual time.
	for step := 0; step < 25; step++ {
		eng.RunFor(20 * time.Millisecond)
		now := eng.Now()
		alive := 0
		for r := 0; r < world; r++ {
			for _, cs := range op.Snapshot(topo.Rank(r)) {
				if now.Sub(cs.LastProgress) < 20*time.Millisecond && !cs.Done {
					alive++
				}
			}
		}
		bar := ""
		for i := 0; i < alive; i++ {
			bar += "#"
		}
		fmt.Printf("[%8v] %2d/%d ranks still progressing %s\n", now, alive, world, bar)
		if alive == 0 && now > faultAt {
			fmt.Printf("\ncluster-wide stall %v after the fault\n", now.Sub(faultAt).Round(time.Millisecond))
			return
		}
	}
	fmt.Println("pipeline still draining (increase the horizon)")
}
