// Quickstart: build a simulated 8-GPU training job with Mycroft attached,
// kill one NIC mid-training, and watch the trigger fire and the root cause
// land on the right rank — all in deterministic virtual time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mycroft"
)

func main() {
	sys := mycroft.MustNewSystem(mycroft.Options{Seed: 42})

	sys.OnTrigger = func(tr mycroft.Trigger) {
		fmt.Printf("  %v\n", tr)
	}
	sys.OnReport = func(r mycroft.Report) {
		fmt.Printf("  %v\n", r)
	}

	fmt.Println("training 8 ranks (2 nodes × 4 GPUs, TP=2 PP=2 DP=2)...")
	sys.Start()
	sys.Run(15 * time.Second)
	fmt.Printf("  healthy: %d iterations, %d trace records\n",
		sys.Job.IterationsDone(), sys.Job.DB.Ingested())

	fmt.Println("\ninjecting: NIC of rank 5 goes down (gray failure — nothing errors out)")
	sys.Inject(mycroft.Fault{Kind: mycroft.NICDown, Rank: 5})
	sys.Run(30 * time.Second)

	if len(sys.Reports()) == 0 {
		fmt.Println("\nno verdict — unexpected")
		return
	}
	rep := sys.Reports()[0]
	faultAt := 15 * time.Second
	detect := time.Duration(rep.Trigger.At) - faultAt
	fmt.Printf("\ndetected %v after the fault; root cause: rank %d, category %q\n",
		detect.Round(100*time.Millisecond), rep.Suspect, rep.Category)
}
