// Quickstart: host a simulated 8-GPU training job on a Mycroft service,
// kill one NIC mid-training, and watch the subscription stream the trigger
// and the root-cause verdict — all in deterministic virtual time. The
// query layer then answers "what did rank 5 log around the fault?", a
// question the old callbacks could not express.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mycroft"
)

func main() {
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 42})
	job := svc.MustAddJob("llm-8gpu", mycroft.JobOptions{})

	svc.Subscribe(mycroft.EventFilter{
		Kinds: []mycroft.EventKind{mycroft.EventTrigger, mycroft.EventReport},
	}).Each(func(e mycroft.Event) {
		fmt.Printf("  %v\n", e)
	})

	fmt.Println("training 8 ranks (2 nodes × 4 GPUs, TP=2 PP=2 DP=2)...")
	svc.Start()
	svc.Run(15 * time.Second)
	fmt.Printf("  healthy: %d iterations, %d trace records\n",
		job.Job.IterationsDone(), job.RecordsIngested())

	fmt.Println("\ninjecting: NIC of rank 5 goes down (gray failure — nothing errors out)")
	job.Inject(mycroft.Fault{Kind: mycroft.NICDown, Rank: 5})
	svc.Run(30 * time.Second)

	reports, _ := svc.QueryReports(mycroft.ReportQuery{})
	if len(reports.Reports) == 0 {
		fmt.Println("\nno verdict — unexpected")
		return
	}
	rep := reports.Reports[0]
	faultAt := 15 * time.Second
	detect := time.Duration(rep.Trigger.At) - faultAt
	fmt.Printf("\ndetected %v after the fault; root cause: rank %d, category %q\n",
		detect.Round(100*time.Millisecond), rep.Suspect, rep.Category)

	// The query layer: rank 5's state logs in the 2 s around the fault.
	recs, _ := svc.QueryTrace(mycroft.TraceQuery{
		Ranks: []mycroft.Rank{5},
		Kinds: []mycroft.RecordKind{mycroft.RecordState},
		From:  faultAt - time.Second, To: faultAt + time.Second,
	})
	fmt.Printf("rank 5 emitted %d state logs in the 2 s around the fault; last: %v\n",
		len(recs.Records), recs.Records[len(recs.Records)-1].String())
}
