// Straggler: one GPU computes 6× slower than its peers — nothing fails, the
// job just quietly loses throughput. The trigger's interval rule fires and
// the late-start analysis (Algorithm 2) names the rank.
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"time"

	"mycroft"
)

func main() {
	sys := mycroft.MustNewSystem(mycroft.Options{Seed: 7})
	sys.OnTrigger = func(tr mycroft.Trigger) { fmt.Printf("  %v\n", tr) }
	sys.OnReport = func(r mycroft.Report) { fmt.Printf("  %v\n", r) }

	fmt.Println("warming up a healthy job (the backend learns its baselines)...")
	sys.Start()
	sys.Run(15 * time.Second)
	healthyIters := sys.Job.IterationsDone()

	fmt.Println("injecting: rank 1's GPU slows 6× (thermal throttling, say)")
	sys.Inject(mycroft.Fault{Kind: mycroft.GPUSlow, Rank: 1, Severity: 6})
	sys.Run(60 * time.Second)

	fmt.Printf("\niterations: %d healthy, then %d more in 60 s of degraded running\n",
		healthyIters, sys.Job.IterationsDone()-healthyIters)
	for _, rep := range sys.Reports() {
		if rep.Category == mycroft.CatComputeStraggler {
			fmt.Printf("straggler verdict: rank %d via %s — %s\n", rep.Suspect, rep.Via, rep.Details)
			return
		}
	}
	fmt.Println("no straggler verdict — unexpected")
}
