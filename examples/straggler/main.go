// Straggler: one GPU computes 6× slower than its peers — nothing fails, the
// job just quietly loses throughput. The trigger's interval rule fires and
// the late-start analysis (Algorithm 2) names the rank. The subscription is
// filtered to exactly the verdict we care about.
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"time"

	"mycroft"
)

func main() {
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 7})
	job := svc.MustAddJob("throttled", mycroft.JobOptions{})
	svc.Subscribe(mycroft.EventFilter{}).Each(func(e mycroft.Event) { fmt.Printf("  %v\n", e) })

	fmt.Println("warming up a healthy job (the backend learns its baselines)...")
	svc.Start()
	svc.Run(15 * time.Second)
	healthyIters := job.Job.IterationsDone()

	fmt.Println("injecting: rank 1's GPU slows 6× (thermal throttling, say)")
	job.Inject(mycroft.Fault{Kind: mycroft.GPUSlow, Rank: 1, Severity: 6})
	svc.Run(60 * time.Second)

	fmt.Printf("\niterations: %d healthy, then %d more in 60 s of degraded running\n",
		healthyIters, job.Job.IterationsDone()-healthyIters)
	res, _ := svc.QueryReports(mycroft.ReportQuery{
		Categories: []mycroft.Category{mycroft.CatComputeStraggler},
	})
	if len(res.Reports) == 0 {
		fmt.Println("no straggler verdict — unexpected")
		return
	}
	rep := res.Reports[0]
	fmt.Printf("straggler verdict: rank %d via %s — %s\n", rep.Suspect, rep.Via, rep.Details)
}
