package mycroft

import (
	"bytes"
	"io"
	"testing"
	"time"

	"mycroft/internal/faults"
)

// TestRecordReplayRoundTrip: record a faulted run through the root API and
// replay it faithfully — the fresh engine must reproduce the recorded
// triggers and reports exactly.
func TestRecordReplayRoundTrip(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 11})
	h, err := svc.AddJob("rec", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := svc.Record("rec", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h.Recording(); !ok || got != rec {
		t.Fatal("Recording() does not expose the live recorder")
	}
	svc.Start()
	h.Inject(Fault{Kind: faults.NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(40 * time.Second)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Recording(); ok {
		t.Fatal("recorder still attached after Close")
	}

	res, err := Replay(&buf, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("closed recording decoded incomplete")
	}
	if res.Header.Job != "rec" || res.Header.Seed != 11 || res.Header.WorldSize != h.WorldSize() {
		t.Fatalf("header misdescribes the run: %+v", res.Header)
	}
	if len(res.Recorded.Triggers) == 0 || len(res.Recorded.Reports) == 0 {
		t.Fatalf("faulted run recorded no conclusions: %d triggers, %d reports",
			len(res.Recorded.Triggers), len(res.Recorded.Reports))
	}
	if d := DiffOutcomes(res.Recorded, res.Replayed); !d.Zero() {
		t.Fatalf("replay drifted:\n%s", d.Render())
	}
}

// TestRecordErrors covers the attachment preconditions.
func TestRecordErrors(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	if _, err := svc.AddJob("a", JobOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Record("ghost", io.Discard); err == nil {
		t.Fatal("recording an unknown job did not error")
	}
	rec, err := svc.Record("a", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Record("a", io.Discard); err == nil {
		t.Fatal("double-record did not error")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	// After Close the slot frees up.
	if _, err := svc.Record("a", io.Discard); err != nil {
		t.Fatalf("re-record after Close: %v", err)
	}
}

// TestRecordMidRunAttach: a recorder attached mid-run carries the store's
// prior records as a preamble, so the artifact still decodes and replays
// cleanly (graph-exact, baselines approximate — see the Recorder doc).
func TestRecordMidRunAttach(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 5})
	h, err := svc.AddJob("mid", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	svc.Run(10 * time.Second)
	var buf bytes.Buffer
	rec, err := svc.Record("mid", &buf)
	if err != nil {
		t.Fatal(err)
	}
	svc.Run(10 * time.Second)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(&buf, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.StartNs != int64(10*time.Second) {
		t.Fatalf("mid-run header StartNs = %d", res.Header.StartNs)
	}
	if res.RecordsIngested == 0 {
		t.Fatal("preamble carried no records")
	}
	_ = h
}

// BenchmarkRecordIngest measures the recorder's tax on a live run: the same
// seeded 30s job driven bare and with an attached recorder. The delta
// between the two sub-benchmarks is the recording overhead (README quotes
// the measured ≤5% line).
func BenchmarkRecordIngest(b *testing.B) {
	run := func(b *testing.B, record bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := NewService(ServiceOptions{Seed: 1})
			h, err := svc.AddJob("bench", JobOptions{})
			if err != nil {
				b.Fatal(err)
			}
			var rec *Recorder
			if record {
				if rec, err = svc.Record("bench", io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			svc.Start()
			svc.Run(30 * time.Second)
			if record {
				if err := rec.Close(); err != nil {
					b.Fatal(err)
				}
			}
			svc.Stop()
			if i == 0 {
				b.ReportMetric(float64(h.RecordsIngested()), "records/run")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("recorded", func(b *testing.B) { run(b, true) })
}

// BenchmarkReplayThroughput measures replay speed in records/sec over an
// in-memory artifact of a 30s faulted run.
func BenchmarkReplayThroughput(b *testing.B) {
	svc := NewService(ServiceOptions{Seed: 1})
	h, err := svc.AddJob("bench", JobOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := svc.Record("bench", &buf)
	if err != nil {
		b.Fatal(err)
	}
	svc.Start()
	h.Inject(Fault{Kind: faults.NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(30 * time.Second)
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
	svc.Stop()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var records uint64
	for i := 0; i < b.N; i++ {
		res, err := Replay(bytes.NewReader(data), ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		records = res.RecordsIngested
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}
