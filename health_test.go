package mycroft

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stallIngest stops the job's training script underneath the service — the
// handle stays started, so from the heartbeat monitor's point of view a live
// job simply went quiet. This is the deterministic stand-in for a crashed
// collector or wedged host.
func stallIngest(h *JobHandle) { h.Job.Stop() }

// TestHealthTransitionsToStale walks the heartbeat ladder: a job whose
// ingest watermark goes quiet crosses healthy → degraded at half the
// staleness threshold and degraded → stale at the full threshold, emitting
// one EventHealth per transition.
func TestHealthTransitionsToStale(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	h, err := svc.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventHealth}})

	svc.Run(5 * time.Second)
	if got := h.Health(); got != HealthHealthy {
		t.Fatalf("health after warmup = %v, want healthy", got)
	}
	if st.Len() != 0 {
		t.Fatalf("healthy run emitted %d health events: %v", st.Len(), st.Drain())
	}

	stallIngest(h)
	svc.Run(25 * time.Second)

	if got := h.Health(); got != HealthStale {
		t.Fatalf("health after stall = %v, want stale", got)
	}
	evs := st.Drain()
	if len(evs) != 2 {
		t.Fatalf("stalled job emitted %d health events, want 2 (degraded, stale): %v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Kind != EventHealth || e.Job != "trace" || e.Health == nil {
			t.Fatalf("event %d is not a health event for the job: %+v", i, e)
		}
	}
	if evs[0].Health.From != HealthHealthy || evs[0].Health.To != HealthDegraded {
		t.Errorf("first transition %v, want healthy -> degraded", evs[0].Health)
	}
	if evs[1].Health.From != HealthDegraded || evs[1].Health.To != HealthStale {
		t.Errorf("second transition %v, want degraded -> stale", evs[1].Health)
	}
	if evs[1].Health.Reason == "" {
		t.Error("stale transition carries no reason")
	}
	if evs[1].At <= evs[0].At {
		t.Errorf("transitions out of order: degraded at %v, stale at %v", evs[0].At, evs[1].At)
	}

	res, err := svc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if res.Server != "" || res.Uptime != 0 {
		t.Errorf("in-process Health carries daemon identity: server %q uptime %v", res.Server, res.Uptime)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("Health lists %d jobs, want 1", len(res.Jobs))
	}
	jh := res.Jobs[0]
	if jh.Job != "trace" || jh.State != HealthStale || jh.Reason == "" {
		t.Errorf("job health %+v, want stale with a reason", jh)
	}
	if jh.LastIngest != evs[1].Health.LastIngest {
		t.Errorf("watermark drifted: Health says %v, stale event said %v", jh.LastIngest, evs[1].Health.LastIngest)
	}
}

// TestHealthMonitorDisabled: StaleAfter < 0 turns the heartbeat monitor off —
// a stalled job stays at its last silent state and no EventHealth fires.
func TestHealthMonitorDisabled(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1, StaleAfter: -1})
	h, err := svc.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventHealth}})
	svc.Run(5 * time.Second)
	stallIngest(h)
	svc.Run(30 * time.Second)
	if st.Len() != 0 {
		t.Fatalf("disabled monitor emitted %d health events", st.Len())
	}
	if got := h.Health(); got != HealthHealthy {
		t.Errorf("disabled monitor moved health to %v", got)
	}
}

// TestHealthOverWire is the wire half: the same stalled run must deliver
// identical EventHealth events through a daemon subscription, and the
// daemon's /v1/health answer must agree on the job verdict while adding the
// process identity the in-process call leaves blank.
func TestHealthOverWire(t *testing.T) {
	run := func(svc *Service, h *JobHandle, advance func(time.Duration)) {
		advance(5 * time.Second)
		stallIngest(h)
		advance(25 * time.Second)
	}
	filter := EventFilter{Kinds: []EventKind{EventHealth}}

	// In-process reference.
	local := NewService(ServiceOptions{Seed: 1})
	lh, err := local.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	local.Start()
	stLocal := local.Subscribe(filter)
	run(local, lh, func(d time.Duration) { local.Run(d) })
	want := stLocal.Drain()
	if len(want) == 0 {
		t.Fatal("reference run emitted no health events")
	}

	// Identical run behind a daemon.
	remote := NewService(ServiceOptions{Seed: 1})
	rh, err := remote.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	remote.Start()
	srv := NewServer(remote)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	stRemote := rc.Subscribe(filter)
	if err := stRemote.Err(); err != nil {
		t.Fatal(err)
	}
	run(remote, rh, func(d time.Duration) {
		for driven := time.Duration(0); driven < d; driven += time.Second {
			srv.Advance(time.Second)
		}
	})

	var got []Event
	for len(got) < len(want) {
		e, ok := stRemote.NextWait(5 * time.Second)
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != len(want) {
		t.Fatalf("remote delivered %d health events, in-process %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() || *got[i].Health != *want[i].Health {
			t.Errorf("health event %d differs:\n remote: %v\n local:  %v", i, got[i], want[i])
		}
	}

	res, err := rc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if res.Server == "" {
		t.Error("daemon Health carries no server identity")
	}
	wantRes, err := local.Health()
	if err != nil {
		t.Fatal(err)
	}
	if res.Now != wantRes.Now || len(res.Jobs) != 1 || res.Jobs[0] != wantRes.Jobs[0] {
		t.Errorf("daemon job health differs:\n remote: %+v\n local:  %+v", res, wantRes)
	}
}

// TestStreamDroppedConcurrent is the slow-consumer accounting test: many
// goroutines publish through Service.dispatch into one tightly-buffered
// stream while a deliberately slow consumer drains it. Every published event
// must be consumed, still buffered, or counted dropped — and the stream's
// drop count must match the service-wide subscription counters exactly.
func TestStreamDroppedConcurrent(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	if _, err := svc.AddJob("j", JobOptions{}); err != nil {
		t.Fatal(err)
	}
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventLifecycle}, Buffer: 8})

	const publishers, perPublisher = 8, 400
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				svc.dispatch(Event{Job: "j", Kind: EventLifecycle, Phase: "tick"})
			}
		}()
	}

	published := make(chan struct{})
	var consumed uint64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			if _, ok := st.NextWait(20 * time.Millisecond); ok {
				consumed++
				time.Sleep(50 * time.Microsecond) // deliberately too slow
				continue
			}
			select {
			case <-published: // publishers finished and the stream is dry
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(published)
	<-consumerDone

	total := uint64(publishers * perPublisher)
	dropped := st.Dropped()
	buffered := uint64(st.Len())
	if consumed+buffered+dropped != total {
		t.Errorf("event accounting leaks: consumed %d + buffered %d + dropped %d != published %d",
			consumed, buffered, dropped, total)
	}
	if dropped == 0 {
		t.Error("slow consumer with buffer 8 dropped nothing — test is not exercising overflow")
	}
	if got := svc.subDropped.Value(); got != dropped {
		t.Errorf("obs drop counter %d != stream drop count %d", got, dropped)
	}
	if got := svc.subDelivered.Value(); got != total {
		t.Errorf("obs delivered counter %d != published %d", got, total)
	}
}
