package mycroft

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/cluster"
)

// ClusterClient is the cluster-aware Client: it rebuilds the fleet's
// consistent-hash ring from one peer's /v1/cluster/info and routes every
// call to the owning primary by JobID — no proxy hop, no coordination
// traffic. When a primary stops answering at the transport layer the call
// retries on the job's replicas in ring order (the same placement every
// peer computed), and live subscriptions resume their event tail on a
// replica from the exact sequence number they had reached; anything the
// replica never received surfaces as a counted drop on Stream.Dropped,
// never as silence.
type ClusterClient struct {
	clusterID string
	ring      *cluster.Ring
	replicas  int
	addrs     map[string]string // peer name → base URL
	hc        *http.Client

	mu        sync.Mutex
	clients   map[string]*RemoteClient
	downUntil map[string]time.Time

	failovers atomic.Uint64
}

// downCooldown is how long a peer that failed at the transport layer is
// deprioritized before the client tries it first again.
const downCooldown = 3 * time.Second

// DialCluster connects to a fleet through any subset of its peers: the
// first reachable address answers /v1/cluster/info, and that one response
// (cluster id, peer list, vnodes, replication factor) is enough to rebuild
// the exact placement every peer uses. Dial retry behavior (and
// ErrUnreachable) matches Dial.
func DialCluster(addrs []string, opts ...DialOption) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("mycroft: DialCluster needs at least one address")
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	var lastErr error
	for _, addr := range addrs {
		rc, err := Dial(addr, opts...)
		if err != nil {
			lastErr = err
			continue
		}
		var info api.ClusterInfoResponse
		if err := rc.get(api.Prefix+"/cluster/info", &info); err != nil {
			lastErr = fmt.Errorf("mycroft: %s: %w", addr, err)
			continue
		}
		cc := &ClusterClient{
			clusterID: info.ClusterID,
			ring:      cluster.NewRing(peerNames(info.Peers), info.VNodes),
			replicas:  info.Replicas,
			addrs:     make(map[string]string, len(info.Peers)),
			hc:        hc,
			clients:   make(map[string]*RemoteClient),
			downUntil: make(map[string]time.Time),
		}
		for _, p := range info.Peers {
			cc.addrs[p.Name] = normalizeBase(p.Addr)
		}
		return cc, nil
	}
	return nil, fmt.Errorf("mycroft: no cluster peer reachable: %w", lastErr)
}

func peerNames(peers []api.ClusterPeer) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		out = append(out, p.Name)
	}
	return out
}

// Failovers reports how many times a call or tail moved off an unreachable
// peer onto the next candidate since dial.
func (cc *ClusterClient) Failovers() uint64 { return cc.failovers.Load() }

// Close releases idle transport connections.
func (cc *ClusterClient) Close() error {
	cc.hc.CloseIdleConnections()
	return nil
}

// client returns (creating lazily) the single-peer transport for name. No
// ping: the fleet's wire version was verified once at DialCluster.
func (cc *ClusterClient) client(name string) *RemoteClient {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	rc := cc.clients[name]
	if rc == nil {
		rc = &RemoteClient{base: cc.addrs[name], hc: cc.hc}
		cc.clients[name] = rc
	}
	return rc
}

func (cc *ClusterClient) markDown(name string) {
	cc.mu.Lock()
	cc.downUntil[name] = time.Now().Add(downCooldown)
	cc.mu.Unlock()
}

func (cc *ClusterClient) markUp(name string) {
	cc.mu.Lock()
	delete(cc.downUntil, name)
	cc.mu.Unlock()
}

// candidates orders a job's primary + replicas for a call: ring order, with
// peers inside their down-cooldown moved to the back (still tried — a
// cooldown is a hint, not a verdict).
func (cc *ClusterClient) candidates(job string) []string {
	peers := cc.ring.Candidates(job, 1+cc.replicas)
	now := time.Now()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	up := make([]string, 0, len(peers))
	var down []string
	for _, p := range peers {
		if until, bad := cc.downUntil[p]; bad && now.Before(until) {
			down = append(down, p)
		} else {
			up = append(up, p)
		}
	}
	return append(up, down...)
}

// allPeers lists every fleet member, up first.
func (cc *ClusterClient) allPeers() []string {
	names := cc.ring.Peers()
	now := time.Now()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	up := make([]string, 0, len(names))
	var down []string
	for _, p := range names {
		if until, bad := cc.downUntil[p]; bad && now.Before(until) {
			down = append(down, p)
		} else {
			up = append(up, p)
		}
	}
	return append(up, down...)
}

// routed runs fn against the job's primary, failing over to its replicas on
// transport errors. Application errors return immediately — the answering
// peer is authoritative for them.
func (cc *ClusterClient) routed(job JobID, fn func(*RemoteClient) error) error {
	peers := cc.candidates(string(job))
	if len(peers) == 0 {
		return fmt.Errorf("mycroft: empty cluster ring")
	}
	var lastErr error
	for i, p := range peers {
		err := fn(cc.client(p))
		if err == nil {
			cc.markUp(p)
			return nil
		}
		if !isTransportErr(err) {
			return err
		}
		cc.markDown(p)
		if i < len(peers)-1 {
			cc.failovers.Add(1)
		}
		lastErr = err
	}
	return fmt.Errorf("mycroft: job %s: every candidate peer failed: %w: %v", job, ErrUnreachable, lastErr)
}

// eachPeer runs fn against every reachable peer, collecting successes;
// transport failures mark the peer down and are skipped. It errors only
// when no peer answered.
func (cc *ClusterClient) eachPeer(fn func(peer string, rc *RemoteClient) error) error {
	answered := 0
	var lastErr error
	for _, p := range cc.allPeers() {
		err := fn(p, cc.client(p))
		if err == nil {
			cc.markUp(p)
			answered++
			continue
		}
		if isTransportErr(err) {
			cc.markDown(p)
		}
		lastErr = err
	}
	if answered == 0 {
		return fmt.Errorf("mycroft: no cluster peer answered: %w: %v", ErrUnreachable, lastErr)
	}
	return nil
}

// resolveJob fills an empty job selector the way a single daemon does:
// allowed only when the fleet hosts exactly one live job.
func (cc *ClusterClient) resolveJob(job JobID) (JobID, error) {
	if job != "" {
		return job, nil
	}
	res, err := cc.ListJobs()
	if err != nil {
		return "", err
	}
	var live []JobID
	for _, j := range res.Jobs {
		if j.Source == "" {
			live = append(live, j.ID)
		}
	}
	if len(live) == 1 {
		return live[0], nil
	}
	return "", fmt.Errorf("mycroft: cluster hosts %d jobs; specify one", len(live))
}

// ListJobs merges every peer's view: live rows win over replicated
// snapshots of the same job, and Now is the furthest virtual clock.
func (cc *ClusterClient) ListJobs() (JobsResult, error) {
	var out JobsResult
	byID := make(map[JobID]JobInfo)
	err := cc.eachPeer(func(_ string, rc *RemoteClient) error {
		res, err := rc.ListJobs()
		if err != nil {
			return err
		}
		if res.Now > out.Now {
			out.Now = res.Now
		}
		for _, j := range res.Jobs {
			if have, ok := byID[j.ID]; !ok || (have.Source != "" && j.Source == "") {
				byID[j.ID] = j
			}
		}
		return nil
	})
	if err != nil {
		return JobsResult{}, err
	}
	for _, j := range byID {
		out.Jobs = append(out.Jobs, j)
	}
	sort.Slice(out.Jobs, func(i, j int) bool { return out.Jobs[i].ID < out.Jobs[j].ID })
	return out, nil
}

// Health merges every peer's health: one row per job (the peer that hosts
// it wins), summed subscription stats, furthest clock, longest uptime.
func (cc *ClusterClient) Health() (HealthResult, error) {
	var out HealthResult
	seen := make(map[JobID]bool)
	peersAnswered := 0
	err := cc.eachPeer(func(_ string, rc *RemoteClient) error {
		res, err := rc.Health()
		if err != nil {
			return err
		}
		peersAnswered++
		if res.Now > out.Now {
			out.Now = res.Now
		}
		if res.Uptime > out.Uptime {
			out.Uptime = res.Uptime
		}
		out.Subs.Active += res.Subs.Active
		out.Subs.Delivered += res.Subs.Delivered
		out.Subs.Dropped += res.Subs.Dropped
		for _, j := range res.Jobs {
			if !seen[j.Job] {
				seen[j.Job] = true
				out.Jobs = append(out.Jobs, j)
			}
		}
		return nil
	})
	if err != nil {
		return HealthResult{}, err
	}
	sort.Slice(out.Jobs, func(i, j int) bool { return out.Jobs[i].Job < out.Jobs[j].Job })
	out.Server = fmt.Sprintf("mycroft-cluster/%d peers=%d", api.Version, peersAnswered)
	return out, nil
}

// QueryTrace routes by the query's job.
func (cc *ClusterClient) QueryTrace(q TraceQuery) (TraceResult, error) {
	job, err := cc.resolveJob(q.Job)
	if err != nil {
		return TraceResult{}, err
	}
	q.Job = job
	var out TraceResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.QueryTrace(q)
		return e
	})
	return out, err
}

// QueryTriggers routes single-job queries by job; multi-job (or all-job)
// queries fan out to every peer and merge, paginating the merged set.
func (cc *ClusterClient) QueryTriggers(q TriggerQuery) (TriggerResult, error) {
	if len(q.Jobs) == 1 {
		var out TriggerResult
		err := cc.routed(q.Jobs[0], func(rc *RemoteClient) error {
			var e error
			out, e = rc.QueryTriggers(q)
			return e
		})
		return out, err
	}
	full := q
	full.Offset, full.Limit = 0, 0
	var all []JobTrigger
	err := cc.eachPeer(func(_ string, rc *RemoteClient) error {
		res, err := rc.QueryTriggers(full)
		if err != nil {
			return err
		}
		all = append(all, res.Triggers...)
		return nil
	})
	if err != nil {
		return TriggerResult{}, err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	page := paginate(all, q.Offset, q.Limit)
	return TriggerResult{Triggers: page, Total: len(all), NextOffset: nextOffset(q.Offset, len(page), len(all))}, nil
}

// QueryReports mirrors QueryTriggers' routing.
func (cc *ClusterClient) QueryReports(q ReportQuery) (ReportResult, error) {
	if len(q.Jobs) == 1 {
		var out ReportResult
		err := cc.routed(q.Jobs[0], func(rc *RemoteClient) error {
			var e error
			out, e = rc.QueryReports(q)
			return e
		})
		return out, err
	}
	full := q
	full.Offset, full.Limit = 0, 0
	var all []JobReport
	err := cc.eachPeer(func(_ string, rc *RemoteClient) error {
		res, err := rc.QueryReports(full)
		if err != nil {
			return err
		}
		all = append(all, res.Reports...)
		return nil
	})
	if err != nil {
		return ReportResult{}, err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].AnalyzedAt < all[j].AnalyzedAt })
	page := paginate(all, q.Offset, q.Limit)
	return ReportResult{Reports: page, Total: len(all), NextOffset: nextOffset(q.Offset, len(page), len(all))}, nil
}

// QueryRemediations mirrors QueryTriggers' routing.
func (cc *ClusterClient) QueryRemediations(q RemediationQuery) (RemediationResult, error) {
	if len(q.Jobs) == 1 {
		var out RemediationResult
		err := cc.routed(q.Jobs[0], func(rc *RemoteClient) error {
			var e error
			out, e = rc.QueryRemediations(q)
			return e
		})
		return out, err
	}
	full := q
	full.Offset, full.Limit = 0, 0
	var all []JobRemediation
	err := cc.eachPeer(func(_ string, rc *RemoteClient) error {
		res, err := rc.QueryRemediations(full)
		if err != nil {
			return err
		}
		all = append(all, res.Attempts...)
		return nil
	})
	if err != nil {
		return RemediationResult{}, err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ReportedAt < all[j].ReportedAt })
	page := paginate(all, q.Offset, q.Limit)
	return RemediationResult{Attempts: page, Total: len(all), NextOffset: nextOffset(q.Offset, len(page), len(all))}, nil
}

// QueryDependencies routes by the query's job. Dependency graphs are not
// replicated, so with the primary down this returns the replica's explicit
// refusal rather than inventing edges.
func (cc *ClusterClient) QueryDependencies(q DependencyQuery) (DependencyResult, error) {
	job, err := cc.resolveJob(q.Job)
	if err != nil {
		return DependencyResult{}, err
	}
	q.Job = job
	var out DependencyResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.QueryDependencies(q)
		return e
	})
	return out, err
}

// BlastRadius routes by job.
func (cc *ClusterClient) BlastRadius(job JobID, suspect Rank) ([]Rank, error) {
	job, err := cc.resolveJob(job)
	if err != nil {
		return nil, err
	}
	var out []Rank
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.BlastRadius(job, suspect)
		return e
	})
	return out, err
}

// QuerySpans routes by job. Span rings live in the primary's engine — the
// whole incident tree, including the peer-labeled replicate-ship spans, is
// answered from one place; a replica reached via failover answers an empty
// page.
func (cc *ClusterClient) QuerySpans(q SpanQuery) (SpanResult, error) {
	job, err := cc.resolveJob(q.Job)
	if err != nil {
		return SpanResult{}, err
	}
	q.Job = job
	var out SpanResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.QuerySpans(q)
		return e
	})
	return out, err
}

// IngestLogs routes channel ingest to the job's primary (replicas cannot
// analyze; a failed-over replica promoted to primary can).
func (cc *ClusterClient) IngestLogs(job JobID, lines []LogLine) (IngestResult, error) {
	job, err := cc.resolveJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	var out IngestResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.IngestLogs(job, lines)
		return e
	})
	return out, err
}

// IngestTimings routes channel ingest to the job's primary.
func (cc *ClusterClient) IngestTimings(job JobID, samples []IterationSample) (IngestResult, error) {
	job, err := cc.resolveJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	var out IngestResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.IngestTimings(job, samples)
		return e
	})
	return out, err
}

// ChannelStats routes by job; a replica answers from its replicated
// snapshot's channel mirror.
func (cc *ClusterClient) ChannelStats(job JobID) (ChannelStatsResult, error) {
	job, err := cc.resolveJob(job)
	if err != nil {
		return ChannelStatsResult{}, err
	}
	var out ChannelStatsResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.ChannelStats(job)
		return e
	})
	return out, err
}

// Triage routes by job; a replica answers from its replicated verdicts.
func (cc *ClusterClient) Triage(job JobID) (TriageResult, error) {
	job, err := cc.resolveJob(job)
	if err != nil {
		return TriageResult{}, err
	}
	var out TriageResult
	err = cc.routed(job, func(rc *RemoteClient) error {
		var e error
		out, e = rc.Triage(job)
		return e
	})
	return out, err
}

// ClusterInfo merges the fleet's own view with this client's direct
// observations: the first answering peer's table is the base, every peer
// the client cannot reach right now is overridden to dead, and job rows are
// merged across peers preferring the hosting (Local) row.
func (cc *ClusterClient) ClusterInfo() (api.ClusterInfoResponse, error) {
	var base *api.ClusterInfoResponse
	reached := make(map[string]bool)
	jobs := make(map[string]api.ClusterJob)
	var stats api.ClusterStats
	statsSeen := false
	err := cc.eachPeer(func(peer string, rc *RemoteClient) error {
		var info api.ClusterInfoResponse
		if err := rc.get(api.Prefix+"/cluster/info", &info); err != nil {
			return err
		}
		reached[info.Self] = true
		if base == nil {
			base = &info
		}
		if s := info.Stats; s != nil {
			statsSeen = true
			stats.ReplicatedEvents += s.ReplicatedEvents
			stats.ReplicationBatches += s.ReplicationBatches
			stats.ReplicationFailures += s.ReplicationFailures
			stats.Handoffs += s.Handoffs
			stats.TailPrimary += s.TailPrimary
			stats.TailReplica += s.TailReplica
			stats.TailPromoted += s.TailPromoted
		}
		for _, row := range info.Jobs {
			have, ok := jobs[row.ID]
			if !ok || (!have.Local && row.Local) || (!have.Local && !have.Promoted && row.Promoted) {
				jobs[row.ID] = row
			}
		}
		return nil
	})
	if err != nil {
		return api.ClusterInfoResponse{}, err
	}
	resp := *base
	if statsSeen {
		// Fleet-wide counters: the sum across every answering peer.
		resp.Stats = &stats
	}
	for i, p := range resp.Peers {
		if !reached[p.Name] {
			resp.Peers[i].State = api.PeerDead
		}
	}
	resp.Jobs = resp.Jobs[:0]
	for _, row := range jobs {
		resp.Jobs = append(resp.Jobs, row)
	}
	sort.Slice(resp.Jobs, func(i, j int) bool { return resp.Jobs[i].ID < resp.Jobs[j].ID })
	return resp, nil
}

// Subscribe returns a live stream fed by one seq-cursored tail per job.
// Each tail starts at its primary's current watermark ("now") and survives
// the primary dying: it re-issues the same cursor against the job's
// replicas, and any entries the replica never received show up as an exact,
// bounded count on Stream.Dropped — computed from the sequence gaps, never
// guessed. Filter matching happens client-side, so the filter semantics are
// identical to a single-daemon subscription.
func (cc *ClusterClient) Subscribe(f EventFilter) *Stream {
	st := newStream(nil, f)
	jobs := f.Jobs
	if len(jobs) == 0 {
		res, err := cc.ListJobs()
		if err != nil {
			st.fail(err)
			return st
		}
		for _, j := range res.Jobs {
			if j.Source == "" {
				jobs = append(jobs, j.ID)
			}
		}
	}
	if len(jobs) == 0 {
		st.fail(fmt.Errorf("mycroft: cluster hosts no jobs to subscribe to"))
		return st
	}
	for _, job := range jobs {
		go cc.tailLoop(string(job), st)
	}
	return st
}

// tailLoop follows one job's event log across whatever peer currently
// serves it.
func (cc *ClusterClient) tailLoop(job string, st *Stream) {
	var last uint64
	primed := false
	for !st.isClosed() {
		progressed := false
		for _, p := range cc.candidates(job) {
			if st.isClosed() {
				return
			}
			rc := cc.client(p)
			req := api.TailRequest{Job: job, AfterSeq: last, TimeoutMs: 1000, Max: 256}
			if !primed {
				// Priming probe: learn the current watermark without
				// replaying history — a live subscription starts "now".
				req.AfterSeq = math.MaxUint64
				req.TimeoutMs = 0
			}
			var resp api.TailResponse
			err := rc.post(api.Prefix+"/cluster/tail", req, &resp)
			if err != nil {
				if isTransportErr(err) {
					cc.markDown(p)
					cc.failovers.Add(1)
				}
				// Application errors (peer neither hosts nor follows) also
				// fall through to the next candidate: after a handoff the
				// authoritative peer may not be the ring primary.
				continue
			}
			cc.markUp(p)
			if !primed {
				last = resp.Watermark
				primed = true
				progressed = true
				break
			}
			for _, se := range resp.Entries {
				if se.Seq <= last {
					continue
				}
				// A jump in the sequence is the drop accounting: entries the
				// serving peer no longer has (trimmed log) or never got
				// (replication gap after failover).
				st.addDropped(se.Seq - last - 1)
				last = se.Seq
				e, err := eventFromWire(se.Event)
				if err != nil {
					st.fail(err)
					return
				}
				if st.filter.matches(e) {
					st.deliver(e)
				}
			}
			progressed = true
			break
		}
		if !progressed {
			// Every candidate refused; back off briefly and retry — the
			// fleet may be mid-failover.
			time.Sleep(250 * time.Millisecond)
		}
	}
}
