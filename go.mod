module mycroft

go 1.22
