package mycroft

// Domain ↔ wire conversions shared by the two transport endpoints: the
// Server adapter (wire request in, domain query out, domain result in, wire
// response out) and the RemoteClient (the exact inverse). Keeping both
// directions in one file makes a wire-breaking asymmetry a local diff.

import (
	"time"

	"mycroft/internal/api"
	"mycroft/internal/core"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
)

func ranksToInts(rs []Rank) []int {
	if rs == nil {
		return nil
	}
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = int(r)
	}
	return out
}

func intsToRanks(is []int) []Rank {
	if is == nil {
		return nil
	}
	out := make([]Rank, len(is))
	for i, v := range is {
		out[i] = Rank(v)
	}
	return out
}

func jobsToStrings(ids []JobID) []string {
	if ids == nil {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func stringsToJobs(ss []string) []JobID {
	if ss == nil {
		return nil
	}
	out := make([]JobID, len(ss))
	for i, s := range ss {
		out[i] = JobID(s)
	}
	return out
}

// --- trace ---

func traceCursorToWire(c *TraceCursor) *api.TraceCursor {
	if c == nil {
		return nil
	}
	return &api.TraceCursor{Rank: int(c.Rank), TimeNs: int64(c.Time), Emitted: c.Emitted}
}

func traceCursorFromWire(c *api.TraceCursor) *TraceCursor {
	if c == nil {
		return nil
	}
	return &TraceCursor{Rank: Rank(c.Rank), Time: sim.Time(c.TimeNs), Emitted: c.Emitted}
}

func traceQueryToWire(q TraceQuery) api.TraceRequest {
	req := api.TraceRequest{
		Job: string(q.Job), Ranks: ranksToInts(q.Ranks), Comm: q.Comm,
		FromNs: int64(q.From), ToNs: int64(q.To), Limit: q.Limit,
		Cursor: traceCursorToWire(q.Cursor),
	}
	for _, k := range q.Kinds {
		req.Kinds = append(req.Kinds, api.RecordKindName(k))
	}
	return req
}

func traceQueryFromWire(req api.TraceRequest) (TraceQuery, error) {
	q := TraceQuery{
		Job: JobID(req.Job), Ranks: intsToRanks(req.Ranks), Comm: req.Comm,
		From: time.Duration(req.FromNs), To: time.Duration(req.ToNs), Limit: req.Limit,
		Cursor: traceCursorFromWire(req.Cursor),
	}
	for _, s := range req.Kinds {
		k, err := api.ParseRecordKind(s)
		if err != nil {
			return TraceQuery{}, err
		}
		q.Kinds = append(q.Kinds, k)
	}
	return q, nil
}

func traceResultToWire(res TraceResult) api.TraceResponse {
	resp := api.TraceResponse{Job: string(res.Job), Total: res.Total, Next: traceCursorToWire(res.Next)}
	for _, r := range res.Records {
		resp.Records = append(resp.Records, api.FromRecord(r))
	}
	return resp
}

func traceResultFromWire(resp api.TraceResponse) (TraceResult, error) {
	res := TraceResult{Job: JobID(resp.Job), Total: resp.Total, Next: traceCursorFromWire(resp.Next)}
	for _, r := range resp.Records {
		rec, err := r.Record()
		if err != nil {
			return TraceResult{}, err
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// --- triggers ---

func triggerQueryToWire(q TriggerQuery) api.TriggersRequest {
	req := api.TriggersRequest{
		Jobs: jobsToStrings(q.Jobs), Ranks: ranksToInts(q.Ranks),
		FromNs: int64(q.From), ToNs: int64(q.To), Offset: q.Offset, Limit: q.Limit,
	}
	for _, k := range q.Kinds {
		req.Kinds = append(req.Kinds, api.TriggerKindName(k))
	}
	return req
}

func triggerQueryFromWire(req api.TriggersRequest) (TriggerQuery, error) {
	q := TriggerQuery{
		Jobs: stringsToJobs(req.Jobs), Ranks: intsToRanks(req.Ranks),
		From: time.Duration(req.FromNs), To: time.Duration(req.ToNs), Offset: req.Offset, Limit: req.Limit,
	}
	for _, s := range req.Kinds {
		k, err := api.ParseTriggerKind(s)
		if err != nil {
			return TriggerQuery{}, err
		}
		q.Kinds = append(q.Kinds, k)
	}
	return q, nil
}

func triggerResultToWire(res TriggerResult) api.TriggersResponse {
	resp := api.TriggersResponse{Total: res.Total, NextOffset: res.NextOffset}
	for _, t := range res.Triggers {
		resp.Triggers = append(resp.Triggers, api.JobTrigger{Job: string(t.Job), Trigger: api.FromTrigger(t.Trigger)})
	}
	return resp
}

func triggerResultFromWire(resp api.TriggersResponse) (TriggerResult, error) {
	res := TriggerResult{Total: resp.Total, NextOffset: resp.NextOffset}
	for _, t := range resp.Triggers {
		tr, err := t.Trigger.Trigger()
		if err != nil {
			return TriggerResult{}, err
		}
		res.Triggers = append(res.Triggers, JobTrigger{Job: JobID(t.Job), Trigger: tr})
	}
	return res, nil
}

// --- reports ---

func reportQueryToWire(q ReportQuery) api.ReportsRequest {
	req := api.ReportsRequest{
		Jobs: jobsToStrings(q.Jobs), Suspects: ranksToInts(q.Suspects), Comm: q.Comm,
		FromNs: int64(q.From), ToNs: int64(q.To), Offset: q.Offset, Limit: q.Limit,
	}
	for _, c := range q.Categories {
		req.Categories = append(req.Categories, string(c))
	}
	return req
}

func reportQueryFromWire(req api.ReportsRequest) ReportQuery {
	q := ReportQuery{
		Jobs: stringsToJobs(req.Jobs), Suspects: intsToRanks(req.Suspects), Comm: req.Comm,
		From: time.Duration(req.FromNs), To: time.Duration(req.ToNs), Offset: req.Offset, Limit: req.Limit,
	}
	for _, s := range req.Categories {
		q.Categories = append(q.Categories, core.Category(s))
	}
	return q
}

func reportResultToWire(res ReportResult) api.ReportsResponse {
	resp := api.ReportsResponse{Total: res.Total, NextOffset: res.NextOffset}
	for _, r := range res.Reports {
		resp.Reports = append(resp.Reports, api.JobReport{Job: string(r.Job), Report: api.FromReport(r.Report)})
	}
	return resp
}

func reportResultFromWire(resp api.ReportsResponse) (ReportResult, error) {
	res := ReportResult{Total: resp.Total, NextOffset: resp.NextOffset}
	for _, r := range resp.Reports {
		rep, err := r.Report.Report()
		if err != nil {
			return ReportResult{}, err
		}
		res.Reports = append(res.Reports, JobReport{Job: JobID(r.Job), Report: rep})
	}
	return res, nil
}

// --- dependencies ---

func dependencyQueryToWire(q DependencyQuery) api.DependenciesRequest {
	return api.DependenciesRequest{Job: string(q.Job), Comm: q.Comm, Ranks: ranksToInts(q.Ranks), RenderDOT: q.RenderDOT}
}

func dependencyQueryFromWire(req api.DependenciesRequest) DependencyQuery {
	return DependencyQuery{Job: JobID(req.Job), Comm: req.Comm, Ranks: intsToRanks(req.Ranks), RenderDOT: req.RenderDOT}
}

func dependencyResultToWire(res DependencyResult) api.DependenciesResponse {
	resp := api.DependenciesResponse{Job: string(res.Job), DOT: res.DOT}
	for _, e := range res.Edges {
		resp.Edges = append(resp.Edges, api.FromEdge(e))
	}
	return resp
}

func dependencyResultFromWire(resp api.DependenciesResponse) (DependencyResult, error) {
	res := DependencyResult{Job: JobID(resp.Job), DOT: resp.DOT}
	for _, e := range resp.Edges {
		edge, err := e.Edge()
		if err != nil {
			return DependencyResult{}, err
		}
		res.Edges = append(res.Edges, edge)
	}
	return res, nil
}

// --- remediations ---

func remediationQueryToWire(q RemediationQuery) api.RemediationsRequest {
	req := api.RemediationsRequest{
		Jobs: jobsToStrings(q.Jobs), Ranks: ranksToInts(q.Ranks),
		FromNs: int64(q.From), ToNs: int64(q.To), Offset: q.Offset, Limit: q.Limit,
	}
	for _, a := range q.Actions {
		req.Actions = append(req.Actions, string(a))
	}
	for _, o := range q.Outcomes {
		req.Outcomes = append(req.Outcomes, string(o))
	}
	return req
}

func remediationQueryFromWire(req api.RemediationsRequest) (RemediationQuery, error) {
	q := RemediationQuery{
		Jobs: stringsToJobs(req.Jobs), Ranks: intsToRanks(req.Ranks),
		From: time.Duration(req.FromNs), To: time.Duration(req.ToNs), Offset: req.Offset, Limit: req.Limit,
	}
	for _, s := range req.Actions {
		a, err := api.ParseActionKind(s)
		if err != nil {
			return RemediationQuery{}, err
		}
		q.Actions = append(q.Actions, a)
	}
	for _, s := range req.Outcomes {
		o, err := api.ParseOutcome(s)
		if err != nil {
			return RemediationQuery{}, err
		}
		q.Outcomes = append(q.Outcomes, o)
	}
	return q, nil
}

func remediationResultToWire(res RemediationResult) api.RemediationsResponse {
	resp := api.RemediationsResponse{Total: res.Total, NextOffset: res.NextOffset}
	for _, a := range res.Attempts {
		resp.Attempts = append(resp.Attempts, api.JobAttempt{Job: string(a.Job), Attempt: api.FromAttempt(a.RemedyAttempt)})
	}
	return resp
}

func remediationResultFromWire(resp api.RemediationsResponse) (RemediationResult, error) {
	res := RemediationResult{Total: resp.Total, NextOffset: resp.NextOffset}
	for _, a := range resp.Attempts {
		att, err := a.Attempt.Attempt()
		if err != nil {
			return RemediationResult{}, err
		}
		res.Attempts = append(res.Attempts, JobRemediation{Job: JobID(a.Job), RemedyAttempt: att})
	}
	return res, nil
}

// --- spans ---

func spanResultFromWire(resp api.SpansResponse) SpanResult {
	res := SpanResult{Job: JobID(resp.Job), Total: resp.Total, Dropped: resp.Dropped}
	for _, s := range resp.Spans {
		res.Spans = append(res.Spans, s.Span())
	}
	return res
}

// --- jobs ---

func jobsResultToWire(res JobsResult) api.JobsResponse {
	resp := api.JobsResponse{NowNs: int64(res.Now)}
	for _, j := range res.Jobs {
		resp.Jobs = append(resp.Jobs, api.JobInfo{
			ID: string(j.ID), WorldSize: j.WorldSize, Iterations: j.Iterations,
			Records: j.Records, Store: api.FromStats(j.Store),
			Isolated: ranksToInts(j.Isolated), Policy: j.Policy, Source: j.Source,
		})
	}
	return resp
}

func jobsResultFromWire(resp api.JobsResponse) JobsResult {
	res := JobsResult{Now: time.Duration(resp.NowNs)}
	for _, j := range resp.Jobs {
		res.Jobs = append(res.Jobs, JobInfo{
			ID: JobID(j.ID), WorldSize: j.WorldSize, Iterations: j.Iterations,
			Records: j.Records, Store: j.Store.Stats(),
			Isolated: intsToRanks(j.Isolated), Policy: j.Policy, Source: j.Source,
		})
	}
	return res
}

// --- health ---

func healthChangeToWire(c HealthChange) api.HealthChange {
	return api.HealthChange{
		From: string(c.From), To: string(c.To),
		LastIngestNs: int64(c.LastIngest), Reason: c.Reason,
	}
}

func healthChangeFromWire(w api.HealthChange) (HealthChange, error) {
	from, err := api.ParseHealthState(w.From)
	if err != nil {
		return HealthChange{}, err
	}
	to, err := api.ParseHealthState(w.To)
	if err != nil {
		return HealthChange{}, err
	}
	return HealthChange{
		From: HealthState(from), To: HealthState(to),
		LastIngest: time.Duration(w.LastIngestNs), Reason: w.Reason,
	}, nil
}

func healthResultToWire(res HealthResult) api.HealthResponse {
	resp := api.HealthResponse{
		NowNs: int64(res.Now), UptimeMs: res.Uptime.Milliseconds(),
		Server: res.Server, Version: api.Version,
		Subscriptions: api.SubscriptionStats{
			Active: res.Subs.Active, Delivered: res.Subs.Delivered, Dropped: res.Subs.Dropped,
		},
	}
	for _, j := range res.Jobs {
		resp.Jobs = append(resp.Jobs, api.JobHealthInfo{
			Job: string(j.Job), State: string(j.State),
			SinceNs: int64(j.Since), LastIngestNs: int64(j.LastIngest), Reason: j.Reason,
		})
	}
	return resp
}

func healthResultFromWire(resp api.HealthResponse) (HealthResult, error) {
	res := HealthResult{
		Now: time.Duration(resp.NowNs), Uptime: time.Duration(resp.UptimeMs) * time.Millisecond,
		Server: resp.Server,
		Subs: SubStats{
			Active: resp.Subscriptions.Active, Delivered: resp.Subscriptions.Delivered, Dropped: resp.Subscriptions.Dropped,
		},
	}
	for _, j := range resp.Jobs {
		state, err := api.ParseHealthState(j.State)
		if err != nil {
			return HealthResult{}, err
		}
		res.Jobs = append(res.Jobs, JobHealth{
			Job: JobID(j.Job), State: HealthState(state),
			Since: time.Duration(j.SinceNs), LastIngest: time.Duration(j.LastIngestNs), Reason: j.Reason,
		})
	}
	return res, nil
}

// --- events and filters ---

func eventFilterToWire(f EventFilter) api.EventFilter {
	w := api.EventFilter{
		Jobs: jobsToStrings(f.Jobs), Ranks: ranksToInts(f.Ranks), Victims: ranksToInts(f.Victims),
		MinChain: f.MinChain, FromNs: int64(f.From), ToNs: int64(f.To), Buffer: f.Buffer,
	}
	for _, k := range f.Kinds {
		w.Kinds = append(w.Kinds, api.EventKindName(k))
	}
	for _, c := range f.Categories {
		w.Categories = append(w.Categories, string(c))
	}
	for _, o := range f.Outcomes {
		w.Outcomes = append(w.Outcomes, string(o))
	}
	return w
}

func eventFilterFromWire(w api.EventFilter) (EventFilter, error) {
	f := EventFilter{
		Jobs: stringsToJobs(w.Jobs), Ranks: intsToRanks(w.Ranks), Victims: intsToRanks(w.Victims),
		MinChain: w.MinChain, From: time.Duration(w.FromNs), To: time.Duration(w.ToNs), Buffer: w.Buffer,
	}
	for _, s := range w.Kinds {
		k, err := api.ParseEventKind(s)
		if err != nil {
			return EventFilter{}, err
		}
		f.Kinds = append(f.Kinds, k)
	}
	for _, s := range w.Categories {
		f.Categories = append(f.Categories, core.Category(s))
	}
	for _, s := range w.Outcomes {
		o, err := api.ParseOutcome(s)
		if err != nil {
			return EventFilter{}, err
		}
		f.Outcomes = append(f.Outcomes, remedy.Outcome(o))
	}
	return f, nil
}

func eventToWire(e Event) api.Event {
	w := api.Event{Job: string(e.Job), Kind: api.EventKindName(e.Kind), AtNs: int64(e.At), Phase: e.Phase}
	if e.Trigger != nil {
		t := api.FromTrigger(*e.Trigger)
		w.Trigger = &t
	}
	if e.Report != nil {
		r := api.FromReport(*e.Report)
		w.Report = &r
	}
	if e.Action != nil {
		a := api.FromAttempt(*e.Action)
		w.Action = &a
	}
	if e.Health != nil {
		h := healthChangeToWire(*e.Health)
		w.Health = &h
	}
	if e.LogAnomaly != nil {
		a := api.FromLogAnomaly(*e.LogAnomaly)
		w.LogAnomaly = &a
	}
	return w
}

func eventFromWire(w api.Event) (Event, error) {
	kind, err := api.ParseEventKind(w.Kind)
	if err != nil {
		return Event{}, err
	}
	e := Event{Job: JobID(w.Job), Kind: kind, At: time.Duration(w.AtNs), Phase: w.Phase}
	if w.Trigger != nil {
		t, err := w.Trigger.Trigger()
		if err != nil {
			return Event{}, err
		}
		e.Trigger = &t
	}
	if w.Report != nil {
		r, err := w.Report.Report()
		if err != nil {
			return Event{}, err
		}
		e.Report = &r
	}
	if w.Action != nil {
		a, err := w.Action.Attempt()
		if err != nil {
			return Event{}, err
		}
		e.Action = &a
	}
	if w.Health != nil {
		h, err := healthChangeFromWire(*w.Health)
		if err != nil {
			return Event{}, err
		}
		e.Health = &h
	}
	if w.LogAnomaly != nil {
		a, err := w.LogAnomaly.LogAnomaly()
		if err != nil {
			return Event{}, err
		}
		e.LogAnomaly = &a
	}
	return e, nil
}

// channelStatsToWire converts a ChannelStats answer to its wire form.
func channelStatsToWire(res ChannelStatsResult) api.ChannelsResponse {
	w := api.ChannelsResponse{
		Job: string(res.Job),
		Fusion: api.FusionInfo{
			WindowNs: int64(res.Fusion.Window), LastOutcome: res.Fusion.LastOutcome,
			LastConfidence: res.Fusion.LastConfidence,
		},
	}
	if len(res.Fusion.Outcomes) > 0 {
		w.Fusion.Outcomes = make(map[string]uint64, len(res.Fusion.Outcomes))
		for k, v := range res.Fusion.Outcomes {
			w.Fusion.Outcomes[k] = v
		}
	}
	for _, c := range res.Channels {
		w.Channels = append(w.Channels, api.ChannelInfo{
			Channel: string(c.Channel), Ingested: c.Ingested,
			Anomalies: c.Anomalies, Reports: c.Reports, Templates: c.Templates,
		})
	}
	return w
}

// channelStatsFromWire converts a wire channels response back to the domain.
func channelStatsFromWire(w api.ChannelsResponse) (ChannelStatsResult, error) {
	res := ChannelStatsResult{
		Job: JobID(w.Job),
		Fusion: FusionInfo{
			Window: time.Duration(w.Fusion.WindowNs), LastOutcome: w.Fusion.LastOutcome,
			LastConfidence: w.Fusion.LastConfidence,
			Outcomes:       make(map[string]uint64, len(w.Fusion.Outcomes)),
		},
	}
	for k, v := range w.Fusion.Outcomes {
		res.Fusion.Outcomes[k] = v
	}
	for _, c := range w.Channels {
		m, err := api.ParseModality(c.Channel)
		if err != nil {
			return ChannelStatsResult{}, err
		}
		res.Channels = append(res.Channels, ChannelInfo{
			Channel: m, Ingested: c.Ingested,
			Anomalies: c.Anomalies, Reports: c.Reports, Templates: c.Templates,
		})
	}
	return res, nil
}
